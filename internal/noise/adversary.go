package noise

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/rng"
)

// This file adds the hostile end of the channel axis: budget-bounded
// adversarial corruption ("adversary:strategy:budget[:args]") and a
// deterministic duty-cycle jammer ("jam:duty:period"). The stochastic
// models answer "how does the protocol fare on average?"; these answer
// the resilience-frontier question — how much targeted interference
// breaks it (sweep.FrontierSearch drives the budget as a search axis).
//
// The adversary contract (DESIGN.md §2.16) in brief:
//
//   - A Strategy observes only the listener's pre-noise reception bit,
//     the absolute slot index, public topology (when bound), and one
//     private uniform per slot — never protocol state, other nodes'
//     receptions, or the future. That keeps samplers position-
//     deterministic: the three execution paths (ApplyInto, FlipAt,
//     ApplyLaneInto) share one decision procedure and stay bit-identical.
//   - Budget is per sampler, i.e. per (node, lane): the adversary may
//     corrupt at most Budget receptions of each listener. Spending is
//     greedy — every slot the strategy targets is corrupted until the
//     budget runs dry — so a larger budget's corruption set contains a
//     smaller one's, the monotonicity the frontier's binary search
//     leans on (protocol-level breakage need not be monotone, but the
//     bracket invariant keeps the search result well-defined).
//   - Protected slots (NoisyOwn=false own-beep slots) outrank the
//     strategy: they are never corrupted and never charged.

// Hostile model names.
const (
	NameAdversary = "adversary"
	NameJam       = "jam"
)

// Registered adversary strategy names.
const (
	StrategyRandom = "random" // budget-limited baseline: corrupt each slot w.p. p
	StrategySolo   = "solo"   // kill detected beeps — attacks the solo-detection filter
	StrategyPhase  = "phase"  // concentrate flips at phase/window boundaries
	StrategyHub    = "hub"    // spend budget only at high-degree listeners
)

// AdversaryCalibRate is the worst-case per-window corruption rate the
// θ/repetition calibration provisions for under an adversarial channel
// (CalibrationRate): the decoders assume at most this fraction of any
// repetition window is corrupted, whatever the budget. 0.15 sits in the
// R = 45 / ρ = 31 calibration band — enough slack that θ = (2·0.15+1)/4
// of a codeword's positions must be zeroed before membership flips,
// while keeping phases short enough for frontier searches to be cheap.
// An adversary whose realized per-window rate exceeds this breaks the
// protocol by design; the run then terminates with a recorded
// *sim.ProtocolBrokenError, never a hang or panic.
const AdversaryCalibRate = 0.15

func init() {
	RegisterSpec(NameAdversary, parseAdversary)
	Register(NameJam, func(args []float64) (Model, error) {
		if err := arity(NameJam, args, 2); err != nil {
			return nil, err
		}
		duty, period := args[0], args[1]
		if duty != math.Trunc(duty) || period != math.Trunc(period) {
			return nil, fmt.Errorf("noise: %s: duty %v and period %v must be integers", NameJam, duty, period)
		}
		return Jam{Duty: int(duty), Period: int(period)}, nil
	})
}

// --- worst-case calibration ---

// WorstCase marks hostile channel models — those whose error process is
// budgeted or scheduled rather than stationary. FlipRates is
// meaningless for them (an adversary's marginal rate over an unbounded
// run is 0); WorstCaseRate is the per-window rate the decoder
// calibration must absorb instead.
type WorstCase interface {
	// WorstCaseRate returns the worst-case fraction of a repetition
	// window the channel may corrupt, in [0, 0.5).
	WorstCaseRate() float64
}

// Hostile reports whether m is a worst-case (adversarial or jamming)
// model. Hostile scenarios that fail output verification are attributed
// to the channel (sim.ProtocolBrokenError), not the algorithm.
func Hostile(m Model) bool {
	_, ok := m.(WorstCase)
	return ok
}

// CalibrationRate returns the rate decoder thresholds and repetition
// factors should calibrate against: the worst-case rate for hostile
// models, the worst marginal flip rate for stochastic ones. For every
// stochastic model this is exactly the max-marginal rule the callers
// used before the hostile axis existed.
func CalibrationRate(m Model) float64 {
	if w, ok := m.(WorstCase); ok {
		return w.WorstCaseRate()
	}
	p01, p10 := m.FlipRates()
	return math.Max(p01, p10)
}

// --- strategy ---

// View is the public information a Strategy may condition on: the
// listener's identity and — once the model is topology-bound
// (TopologyBinder) — its degree and the graph's maximum degree.
// HasTopology distinguishes "degree 0" from "unbound"; unbound
// strategies must degrade safely (hub treats every node as a hub).
type View struct {
	Node        int
	Degree      int
	MaxDegree   int
	HasTopology bool
}

// Strategy decides which slots an adversary sampler corrupts. Corrupt
// is consulted once per observed slot with the listener's view, the
// absolute slot t, the pre-noise reception bit, and a private uniform u
// (drawn for every slot whether or not the strategy uses it, so stream
// consumption never depends on the decision). It must be a pure
// function of its arguments — no internal state — which is what keeps
// the scalar, batch, and lane paths interchangeable mid-run.
type Strategy interface {
	Name() string
	Corrupt(v View, t int, bit bool, u float64) bool
}

type randomStrategy struct{ p float64 }

func (s randomStrategy) Name() string                                  { return StrategyRandom }
func (s randomStrategy) Corrupt(_ View, _ int, _ bool, u float64) bool { return u < s.p }

// soloStrategy flips detected beeps (1 → 0): the cheapest attack on the
// paper's solo-detection filter, which needs a codeword's solo
// positions to survive as 1s. It never fabricates energy.
type soloStrategy struct{}

func (soloStrategy) Name() string                                    { return StrategySolo }
func (soloStrategy) Corrupt(_ View, _ int, bit bool, _ float64) bool { return bit }

// phaseStrategy corrupts the first width slots of every period-slot
// stretch — flips concentrated at phase/window boundaries, where
// Algorithm 1's presence beacons and the TDMA slot headers live.
type phaseStrategy struct{ period, width int }

func (s phaseStrategy) Name() string                                  { return StrategyPhase }
func (s phaseStrategy) Corrupt(_ View, t int, _ bool, _ float64) bool { return t%s.period < s.width }

// hubStrategy spends budget only at high-degree listeners (degree ≥
// frac·Δ). Without topology every listener counts as a hub — the
// strategy degrades to solo-style greed rather than silently doing
// nothing.
type hubStrategy struct{ frac float64 }

func (s hubStrategy) Name() string { return StrategyHub }
func (s hubStrategy) Corrupt(v View, _ int, bit bool, _ float64) bool {
	if !bit {
		return false // like solo: only detected beeps are worth budget
	}
	if !v.HasTopology {
		return true
	}
	return float64(v.Degree) >= s.frac*float64(v.MaxDegree)
}

// --- adversary model ---

// Adversary is the budget-bounded adversarial channel
// "adversary:strategy:budget[:args]": a seeded, deterministic Strategy
// corrupts at most Budget receptions per listener (per lane, in sliced
// execution). A and B hold the strategy's parameters:
//
//	adversary:random:T[:p]            A = p, corruption probability (default 0.5)
//	adversary:solo:T                  no parameters
//	adversary:phase:T[:period[:width]] A = period (default 64), B = width (default 8)
//	adversary:hub:T[:frac]            A = degree fraction (default 0.5)
//
// The struct is comparable (Parse round-trip equality), and Spec always
// renders the full canonical argument list.
type Adversary struct {
	Strategy string
	Budget   int
	A, B     float64
}

func parseAdversary(args []string) (Model, error) {
	if len(args) < 2 {
		return nil, fmt.Errorf("noise: model %q takes strategy:budget[:args], got %d parameters", NameAdversary, len(args))
	}
	budget, err := strconv.Atoi(args[1])
	if err != nil {
		return nil, fmt.Errorf("noise: model %q: bad budget %q (want a non-negative integer)", NameAdversary, args[1])
	}
	m := Adversary{Strategy: args[0], Budget: budget}
	rest := make([]float64, 0, len(args)-2)
	for _, a := range args[2:] {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			return nil, fmt.Errorf("noise: model %q: bad parameter %q", NameAdversary, a)
		}
		rest = append(rest, v)
	}
	switch m.Strategy {
	case StrategyRandom, StrategyHub:
		m.A = 0.5
		if len(rest) > 1 {
			return nil, fmt.Errorf("noise: strategy %q takes at most 1 parameter, got %d", m.Strategy, len(rest))
		}
		if len(rest) == 1 {
			m.A = rest[0]
		}
	case StrategySolo:
		if len(rest) != 0 {
			return nil, fmt.Errorf("noise: strategy %q takes no parameters, got %d", m.Strategy, len(rest))
		}
	case StrategyPhase:
		m.A, m.B = 64, 8
		if len(rest) > 2 {
			return nil, fmt.Errorf("noise: strategy %q takes at most 2 parameters, got %d", m.Strategy, len(rest))
		}
		if len(rest) >= 1 {
			m.A = rest[0]
		}
		if len(rest) == 2 {
			m.B = rest[1]
		}
	default:
		return nil, fmt.Errorf("noise: unknown adversary strategy %q (have %s, %s, %s, %s)",
			m.Strategy, StrategyHub, StrategyPhase, StrategyRandom, StrategySolo)
	}
	return m, nil
}

func (m Adversary) Name() string { return NameAdversary }

func (m Adversary) Spec() string {
	s := NameAdversary + ":" + m.Strategy + ":" + strconv.Itoa(m.Budget)
	switch m.Strategy {
	case StrategyRandom, StrategyHub:
		s += ":" + fmtF(m.A)
	case StrategyPhase:
		s += ":" + fmtF(m.A) + ":" + fmtF(m.B)
	}
	return s
}

func (m Adversary) Validate() error {
	if m.Budget < 0 {
		return fmt.Errorf("noise: %s: budget %d is negative", NameAdversary, m.Budget)
	}
	// Unused strategy parameters must be zero: Spec drops them, and two
	// models that render one spec must be one model.
	switch m.Strategy {
	case StrategyRandom:
		if !(m.A > 0 && m.A <= 1) {
			return fmt.Errorf("noise: %s: random corruption probability %v outside (0, 1]", NameAdversary, m.A)
		}
		if m.B != 0 {
			return fmt.Errorf("noise: %s: strategy %q uses no second parameter, got %v", NameAdversary, m.Strategy, m.B)
		}
	case StrategySolo:
		if m.A != 0 || m.B != 0 {
			return fmt.Errorf("noise: %s: strategy %q takes no parameters, got %v, %v", NameAdversary, m.Strategy, m.A, m.B)
		}
	case StrategyPhase:
		if m.A != math.Trunc(m.A) || m.B != math.Trunc(m.B) || m.A < 1 || m.B < 1 || m.B > m.A {
			return fmt.Errorf("noise: %s: phase needs integer period ≥ 1 and width in [1, period], got period %v width %v", NameAdversary, m.A, m.B)
		}
	case StrategyHub:
		if m.A < 0 || m.A > 1 || m.A != m.A {
			return fmt.Errorf("noise: %s: hub degree fraction %v outside [0, 1]", NameAdversary, m.A)
		}
		if m.B != 0 {
			return fmt.Errorf("noise: %s: strategy %q uses no second parameter, got %v", NameAdversary, m.Strategy, m.B)
		}
	default:
		return fmt.Errorf("noise: unknown adversary strategy %q (have %s, %s, %s, %s)",
			m.Strategy, StrategyHub, StrategyPhase, StrategyRandom, StrategySolo)
	}
	return nil
}

// FlipRates is (0, 0): a budgeted adversary has no stationary marginal
// rate — over an unbounded run the corrupted fraction tends to zero.
// Calibration goes through CalibrationRate / WorstCaseRate instead.
func (m Adversary) FlipRates() (p01, p10 float64) { return 0, 0 }

func (m Adversary) Noiseless() bool { return m.Budget == 0 }

// WorstCaseRate implements WorstCase: the per-window corruption rate
// the decoders provision for (AdversaryCalibRate), independent of the
// budget — the budget decides how long the adversary can sustain that
// rate, not how dense it is within a window.
func (m Adversary) WorstCaseRate() float64 { return AdversaryCalibRate }

func (m Adversary) strategy() Strategy {
	switch m.Strategy {
	case StrategyRandom:
		return randomStrategy{p: m.A}
	case StrategySolo:
		return soloStrategy{}
	case StrategyPhase:
		return phaseStrategy{period: int(m.A), width: int(m.B)}
	case StrategyHub:
		return hubStrategy{frac: m.A}
	}
	panic(fmt.Sprintf("noise: unvalidated adversary strategy %q", m.Strategy))
}

// Sampler binds the adversary to one listener without topology: hub
// degrades per View.HasTopology. The execution layers bind topology
// (BindTopology) before deriving samplers, so unbound samplers appear
// only in direct library use.
func (m Adversary) Sampler(seed uint64, node int) Sampler {
	return m.sampler(seed, node, View{Node: node})
}

func (m Adversary) sampler(seed uint64, node int, v View) Sampler {
	return &advSampler{
		strat: m.strategy(),
		view:  v,
		r:     baseStream(seed, node),
		left:  m.Budget,
	}
}

// TopologyBinder is an optional Model capability: attaching public
// topology so per-listener samplers see a full View. Binding is
// deterministic and must happen identically on every execution path
// (beep.NewNetwork for flat runs, the sliced runners for lane runs);
// it never consumes randomness.
type TopologyBinder interface {
	Model
	// BindTopology returns a model whose samplers see the given
	// per-node degrees and maximum degree. degrees is retained; callers
	// pass a fresh slice.
	BindTopology(degrees []int, maxDeg int) Model
}

// BindTopology implements TopologyBinder.
func (m Adversary) BindTopology(degrees []int, maxDeg int) Model {
	return boundAdversary{Adversary: m, degrees: degrees, maxDeg: maxDeg}
}

// boundAdversary is an Adversary with topology attached. It inherits
// the embedded model's identity (Name, Spec, Validate, rates) — binding
// is an execution detail, not a spec axis.
type boundAdversary struct {
	Adversary
	degrees []int
	maxDeg  int
}

func (m boundAdversary) Sampler(seed uint64, node int) Sampler {
	deg := 0
	if node >= 0 && node < len(m.degrees) {
		deg = m.degrees[node]
	}
	return m.sampler(seed, node, View{Node: node, Degree: deg, MaxDegree: m.maxDeg, HasTopology: true})
}

// advSampler walks slots like geSampler: a position counter advances
// through every observed slot, each consuming exactly one uniform —
// drawn before the budget check, so consumption stays position-
// deterministic after exhaustion — and all three paths share step().
type advSampler struct {
	strat Strategy
	view  View
	r     *rng.Stream
	left  int // remaining corruption budget
	pos   int // next unprocessed absolute slot
}

// step processes one observed slot. Gate order: budget, strategy,
// protection — protection outranks the strategy, so protected slots are
// never corrupted and never charged.
func (s *advSampler) step(bit, protected bool) bool {
	u := s.r.Float64()
	t := s.pos
	s.pos++
	if s.left <= 0 {
		return false
	}
	if !s.strat.Corrupt(s.view, t, bit, u) {
		return false
	}
	if protected {
		return false
	}
	s.left--
	return true
}

// skipTo consumes the stream over slots the sampler never saw delivered
// (a done program's skipped rounds). Unobserved slots never spend
// budget: the adversary corrupts receptions, and these had none.
func (s *advSampler) skipTo(start int) {
	for s.pos < start {
		s.r.Float64()
		s.pos++
	}
}

func (s *advSampler) ApplyInto(words []uint64, start, end int, protect []uint64) {
	s.skipTo(start)
	for s.pos < end {
		i := s.pos - start
		mask := uint64(1) << (uint(i) & 63)
		bit := words[i>>6]&mask != 0
		prot := protect != nil && protect[i>>6]&mask != 0
		if s.step(bit, prot) {
			words[i>>6] ^= mask
		}
	}
}

func (s *advSampler) ApplyLaneInto(words []uint64, start, end, lane int, protect []uint64) {
	mask := uint64(1) << uint(lane)
	s.skipTo(start)
	for s.pos < end {
		i := s.pos - start
		bit := words[i]&mask != 0
		prot := protect != nil && protect[i]&mask != 0
		if s.step(bit, prot) {
			words[i] ^= mask
		}
	}
}

func (s *advSampler) FlipAt(t int, bit, protected bool) bool {
	if t < s.pos {
		return false // already-consumed slot, like the stochastic samplers
	}
	s.skipTo(t)
	return s.step(bit, protected)
}

// --- jam ---

// Jam is the duty-cycle jammer "jam:duty:period" from the energy
// literature: during the first Duty slots of every Period-slot cycle
// the channel is saturated with interference, so every listener reads 1
// regardless of what was sent. It is deterministic — no randomness at
// all — and unbudgeted; its worst-case rate is the duty fraction.
type Jam struct {
	Duty   int // jammed slots per cycle
	Period int // cycle length
}

func (m Jam) Name() string { return NameJam }
func (m Jam) Spec() string {
	return NameJam + ":" + strconv.Itoa(m.Duty) + ":" + strconv.Itoa(m.Period)
}

func (m Jam) Validate() error {
	if m.Period < 1 {
		return fmt.Errorf("noise: %s: period %d < 1", NameJam, m.Period)
	}
	if m.Duty < 0 || m.Duty > m.Period {
		return fmt.Errorf("noise: %s: duty %d outside [0, period %d]", NameJam, m.Duty, m.Period)
	}
	if rate := float64(m.Duty) / float64(m.Period); rate >= 0.5 {
		return fmt.Errorf("noise: %s: duty fraction %v outside [0, 0.5)", NameJam, rate)
	}
	return nil
}

// FlipRates: a jammed silent slot reads 1 (p01 = duty fraction); a
// beeped slot already carries energy, so jamming never flips a 1.
func (m Jam) FlipRates() (p01, p10 float64) {
	return float64(m.Duty) / float64(m.Period), 0
}

func (m Jam) Noiseless() bool { return m.Duty == 0 }

// WorstCaseRate implements WorstCase: the duty fraction is both the
// marginal and the worst-case per-window rate (the schedule is
// periodic, not bursty beyond its cycle).
func (m Jam) WorstCaseRate() float64 { return float64(m.Duty) / float64(m.Period) }

// Sampler: the jammer is global and deterministic, so every listener
// shares one schedule and no randomness is consumed on any path.
func (m Jam) Sampler(seed uint64, node int) Sampler {
	return jamSampler{duty: m.Duty, period: m.Period}
}

type jamSampler struct{ duty, period int }

func (s jamSampler) jammed(t int) bool { return t%s.period < s.duty }

func (s jamSampler) ApplyInto(words []uint64, start, end int, protect []uint64) {
	for t := start; t < end; t++ {
		if !s.jammed(t) {
			continue
		}
		i := t - start
		mask := uint64(1) << (uint(i) & 63)
		if protect != nil && protect[i>>6]&mask != 0 {
			continue
		}
		words[i>>6] |= mask
	}
}

func (s jamSampler) ApplyLaneInto(words []uint64, start, end, lane int, protect []uint64) {
	mask := uint64(1) << uint(lane)
	for t := start; t < end; t++ {
		if !s.jammed(t) {
			continue
		}
		i := t - start
		if protect != nil && protect[i]&mask != 0 {
			continue
		}
		words[i] |= mask
	}
}

func (s jamSampler) FlipAt(t int, bit, protected bool) bool {
	return s.jammed(t) && !bit && !protected
}
