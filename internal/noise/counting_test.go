package noise

import (
	"math/rand"
	"testing"
)

// tally is the test Accountant.
type tally struct{ n int64 }

func (t *tally) Add(delta int64) { t.n += delta }

// prenoise builds a deterministic pre-noise reception window of w slots
// (bit i of words = slot start+i) plus a protect mask, from a plain
// math/rand source — test fixture data, independent of internal/rng.
func prenoise(r *rand.Rand, w int, withProtect bool) (words, protect []uint64) {
	words = make([]uint64, (w+63)/64)
	for i := range words {
		words[i] = r.Uint64()
	}
	if withProtect {
		protect = make([]uint64, len(words))
		for i := range protect {
			protect[i] = r.Uint64() & r.Uint64() // sparse-ish protection
		}
	}
	return words, protect
}

func bitAt(words []uint64, i int) bool { return words[i>>6]&(1<<(uint(i)&63)) != 0 }

// scalarFlips replays the window through a fresh sampler's FlipAt path
// — the scalar reference the package's equivalence tests already pin
// ApplyInto to — and returns how many slots report a flip.
func scalarFlips(m Model, seed uint64, node int, start, end int, pre, protect []uint64) int64 {
	s := m.Sampler(seed, node)
	var flips int64
	for t := start; t < end; t++ {
		i := t - start
		protected := protect != nil && bitAt(protect, i)
		if s.FlipAt(t, bitAt(pre, i), protected) {
			flips++
		}
	}
	return flips
}

// TestCountingMatchesScalarReference is the accounting-hook coverage
// from ISSUE 7: for every model, the flip counts reported by the
// Counting wrapper on the batch path must equal the scalar FlipAt
// reference count over the same windows — the FuzzXorFlipsInto-style
// pinning, applied to accounting. It also checks the wrapper changed
// nothing: the perturbed words must equal an unwrapped sampler's.
func TestCountingMatchesScalarReference(t *testing.T) {
	const seed, node = 2023, 5
	for label, m := range testModels() {
		r := rand.New(rand.NewSource(int64(len(label)) * 77))
		for _, withProtect := range []bool{false, true} {
			var acc tally
			wrapped := Counting(m.Sampler(seed, node), &acc)
			plain := m.Sampler(seed, node)
			var wantTotal int64
			start := 0
			// Contiguous windows, like successive phases; widths cover
			// partial words, exact words, and multi-word spans.
			for _, w := range []int{5, 64, 63, 129, 300, 1} {
				end := start + w
				pre, protect := prenoise(r, w, withProtect)
				got := append([]uint64(nil), pre...)
				want := append([]uint64(nil), pre...)
				wrapped.ApplyInto(got, start, end, protect)
				plain.ApplyInto(want, start, end, protect)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s protect=%v window [%d,%d): counting wrapper changed receptions: word %d = %#x, want %#x",
							label, withProtect, start, end, i, got[i], want[i])
					}
				}
				wantTotal += scalarFlips(m, seed, node, start, end, pre, protect)
				start = end
			}
			if acc.n != wantTotal {
				t.Fatalf("%s protect=%v: counted %d flips, scalar reference says %d", label, withProtect, acc.n, wantTotal)
			}
		}
	}
}

// TestCountingFlipAtPath pins the scalar path of the wrapper itself:
// counted flips are exactly the FlipAt-true returns, and return values
// pass through untouched.
func TestCountingFlipAtPath(t *testing.T) {
	const seed, node = 7, 3
	for label, m := range testModels() {
		var acc tally
		wrapped := Counting(m.Sampler(seed, node), &acc)
		plain := m.Sampler(seed, node)
		r := rand.New(rand.NewSource(99))
		var want int64
		for t2 := 0; t2 < 700; t2++ {
			bit := r.Intn(2) == 1
			protected := r.Intn(8) == 0
			got := wrapped.FlipAt(t2, bit, protected)
			ref := plain.FlipAt(t2, bit, protected)
			if got != ref {
				t.Fatalf("%s: FlipAt(%d) = %v through wrapper, want %v", label, t2, got, ref)
			}
			if ref {
				want++
			}
		}
		if acc.n != want {
			t.Fatalf("%s: counted %d flips on the scalar path, want %d", label, acc.n, want)
		}
	}
}

// TestCountingLanePath pins the replicate-sliced path: wrapping a lane
// sampler counts exactly the lane's flips and leaves the transposed
// words identical to an unwrapped sampler — other lanes' bits included.
func TestCountingLanePath(t *testing.T) {
	const seed = 41
	for label, m := range testModels() {
		for _, lane := range []int{0, 17, 63} {
			var acc tally
			wrapped := Counting(m.Sampler(seed, lane), &acc)
			plain := m.Sampler(seed, lane)
			scalar := m.Sampler(seed, lane)
			r := rand.New(rand.NewSource(int64(lane + 1)))
			var want int64
			start := 0
			for _, w := range []int{9, 64, 130} {
				end := start + w
				// Lane-transposed: words[i] holds all replicates' slot
				// start+i; this sampler owns bit lane of each word.
				pre := make([]uint64, w)
				for i := range pre {
					pre[i] = r.Uint64()
				}
				got := append([]uint64(nil), pre...)
				ref := append([]uint64(nil), pre...)
				wrapped.ApplyLaneInto(got, start, end, lane, nil)
				plain.ApplyLaneInto(ref, start, end, lane, nil)
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("%s lane %d window [%d,%d): wrapper changed word %d", label, lane, start, end, i)
					}
				}
				for t2 := start; t2 < end; t2++ {
					bit := pre[t2-start]&(1<<uint(lane)) != 0
					if scalar.FlipAt(t2, bit, false) {
						want++
					}
				}
				start = end
			}
			if acc.n != want {
				t.Fatalf("%s lane %d: counted %d flips, scalar reference says %d", label, lane, acc.n, want)
			}
		}
	}
}

// TestCountingNilPassthrough: nil accountant or sampler must wrap to
// the input unchanged, so call sites wrap unconditionally.
func TestCountingNilPassthrough(t *testing.T) {
	s := Symmetric{Eps: 0.1}.Sampler(1, 0)
	if Counting(s, nil) != s {
		t.Fatal("nil accountant must return the sampler unwrapped")
	}
	if Counting(nil, &tally{}) != nil {
		t.Fatal("nil sampler must stay nil")
	}
}
