package noise

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

// testModels returns one valid instance of every registered model.
func testModels() map[string]Model {
	return map[string]Model{
		NameSymmetric:      Symmetric{Eps: 0.1},
		NameAsymmetric:     Asymmetric{P01: 0.02, P10: 0.2},
		NameErasure + "-0": Erasure{Q: 0.15},
		NameErasure + "-1": Erasure{Q: 0.15, ReadAs1: true},
		NameGilbertElliott: GilbertElliott{PGood: 0.01, PBad: 0.4, PGoodToBad: 0.05, PBadToGood: 0.25},
	}
}

func TestParseRoundTrip(t *testing.T) {
	for label, m := range testModels() {
		spec := m.Spec()
		got, err := Parse(spec)
		if err != nil {
			t.Fatalf("%s: Parse(%q): %v", label, spec, err)
		}
		if got != m {
			t.Errorf("%s: Parse(%q) = %#v, want %#v", label, spec, got, m)
		}
		if got.Spec() != spec {
			t.Errorf("%s: spec not canonical: %q re-renders as %q", label, spec, got.Spec())
		}
	}
	// Non-canonical spellings parse but canonicalize.
	m, err := Parse("asymmetric:0.020:0.200")
	if err != nil {
		t.Fatal(err)
	}
	if m.Spec() != "asymmetric:0.02:0.2" {
		t.Errorf("canonicalization: got %q", m.Spec())
	}
}

func TestParseRejectsInvalid(t *testing.T) {
	bad := []string{
		"",
		"unknown:0.1",
		"symmetric",     // missing ε
		"symmetric:0.5", // ε at capacity
		"symmetric:-0.1",
		"symmetric:0.1:0.2",                // too many args
		"symmetric:zero",                   // non-numeric
		"asymmetric:0.1",                   // arity
		"asymmetric:0.6:0.1",               // p01 out of range
		"erasure:0.1:2",                    // policy must be 0/1
		"erasure:0.5:0",                    // q at capacity
		"gilbert-elliott:0.1:0.2:0.3",      // arity
		"gilbert-elliott:0.1:0.2:1.5:0.3",  // transition out of range
		"gilbert-elliott:0.4:0.9:0.5:0.05", // stationary rate ≥ ½
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", spec)
		}
	}
}

// TestParseErrorsCarrySpec pins the diagnosis contract: every parse or
// validation failure names the offending spec and lists the registered
// models, so a bad entry in a multi-axis grid is self-identifying.
func TestParseErrorsCarrySpec(t *testing.T) {
	for _, spec := range []string{
		"unknown:0.1",        // registry miss
		"symmetric",          // parser arity error
		"symmetric:0.5",      // validation error
		"adversary:warp:100", // strategy error
	} {
		_, err := Parse(spec)
		if err == nil {
			t.Fatalf("Parse(%q) accepted an invalid spec", spec)
		}
		msg := err.Error()
		if !strings.Contains(msg, "\""+spec+"\"") {
			t.Errorf("Parse(%q) error omits the offending spec: %v", spec, err)
		}
		if !strings.Contains(msg, "registered: ") || !strings.Contains(msg, NameSymmetric) {
			t.Errorf("Parse(%q) error omits the registered model names: %v", spec, err)
		}
	}
}

func TestNames(t *testing.T) {
	want := []string{NameAdversary, NameAsymmetric, NameErasure, NameGilbertElliott, NameJam, NameSymmetric}
	got := Names()
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
}

func TestFlipRates(t *testing.T) {
	cases := []struct {
		m        Model
		p01, p10 float64
	}{
		{Symmetric{Eps: 0.1}, 0.1, 0.1},
		{Asymmetric{P01: 0.02, P10: 0.2}, 0.02, 0.2},
		{Erasure{Q: 0.15}, 0, 0.15},
		{Erasure{Q: 0.15, ReadAs1: true}, 0.15, 0},
		// π_B = 0.05/(0.05+0.25) = 1/6; rate = (5/6)·0.01 + (1/6)·0.4.
		{GilbertElliott{PGood: 0.01, PBad: 0.4, PGoodToBad: 0.05, PBadToGood: 0.25},
			5.0/6*0.01 + 1.0/6*0.4, 5.0/6*0.01 + 1.0/6*0.4},
		// Absorbing Good state: the Bad rate is unreachable.
		{GilbertElliott{PGood: 0, PBad: 0.9, PGoodToBad: 0, PBadToGood: 0.2}, 0, 0},
	}
	for _, c := range cases {
		p01, p10 := c.m.FlipRates()
		if math.Abs(p01-c.p01) > 1e-12 || math.Abs(p10-c.p10) > 1e-12 {
			t.Errorf("%s: FlipRates = (%v, %v), want (%v, %v)", c.m.Spec(), p01, p10, c.p01, c.p10)
		}
	}
	if !Noiseless(GilbertElliott{PBad: 0.9, PBadToGood: 0.2}) {
		t.Error("absorbing-Good chain with pGood=0 should be noiseless")
	}
	if Noiseless(Symmetric{Eps: 0.01}) {
		t.Error("ε > 0 reported noiseless")
	}
	// Noiseless is reachability-based, stricter than FlipRates: a chain
	// that flips in Good but is eventually absorbed into a zero-rate Bad
	// state has stationary rate 0 yet is emphatically not noiseless.
	transient := GilbertElliott{PGood: 0.3, PBad: 0, PGoodToBad: 1e-9, PBadToGood: 0}
	if p01, p10 := transient.FlipRates(); p01 != 0 || p10 != 0 {
		t.Errorf("transient chain stationary rates = (%v, %v), want (0, 0)", p01, p10)
	}
	if Noiseless(transient) {
		t.Error("chain with a noisy transient state reported noiseless")
	}
	if !Noiseless(GilbertElliott{}) {
		t.Error("all-zero chain should be noiseless")
	}
}

// TestSymmetricMatchesFlipSampler pins the symmetric sampler to the raw
// rng.FlipSampler over the historic stream derivation — the byte-identity
// anchor for every pre-existing ε record.
func TestSymmetricMatchesFlipSampler(t *testing.T) {
	const seed, node, eps = 99, 5, 0.13
	s := Symmetric{Eps: eps}.Sampler(seed, node)
	ref := rng.NewFlipSampler(rng.New(seed).Split(0x6e6f697365, uint64(node)), eps)
	const window = 640
	got := make([]uint64, window/64)
	s.ApplyInto(got, 0, window, nil)
	want := make([]uint64, window/64)
	ref.XorFlipsInto(want, 0, window)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("word %d: %#x != %#x", i, got[i], want[i])
		}
	}
}

// applyBits runs a sampler's batch path over windowed slots and returns
// the post-noise bits; pre and protect index absolute slots.
func applyBits(s Sampler, pre, protect []bool, windows []int) []bool {
	out := append([]bool(nil), pre...)
	start := 0
	for _, w := range windows {
		end := start + w
		n := (w + 63) / 64
		words := make([]uint64, n)
		var prot []uint64
		for i := 0; i < w; i++ {
			if pre[start+i] {
				words[i>>6] |= 1 << (uint(i) & 63)
			}
			if protect[start+i] {
				if prot == nil {
					prot = make([]uint64, n)
				}
				prot[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		s.ApplyInto(words, start, end, prot)
		for i := 0; i < w; i++ {
			out[start+i] = words[i>>6]>>(uint(i)&63)&1 == 1
		}
		start = end
	}
	return out
}

// TestApplyIntoMatchesFlipAt is the scalar-reference equivalence test:
// for every model, the word-parallel batch path and the slot-serial
// FlipAt path produce identical post-noise bits over identical
// pre-noise data, protection masks, and window partitions.
func TestApplyIntoMatchesFlipAt(t *testing.T) {
	windows := []int{1, 63, 64, 65, 300, 5, 128}
	total := 0
	for _, w := range windows {
		total += w
	}
	for label, m := range testModels() {
		t.Run(label, func(t *testing.T) {
			data := rng.New(777)
			pre := make([]bool, total)
			protect := make([]bool, total)
			for i := range pre {
				pre[i] = data.Bool(0.5)
				protect[i] = data.Bool(0.2)
			}
			batch := applyBits(m.Sampler(42, 3), pre, protect, windows)
			scalar := m.Sampler(42, 3)
			for tSlot := 0; tSlot < total; tSlot++ {
				want := pre[tSlot]
				if scalar.FlipAt(tSlot, pre[tSlot], protect[tSlot]) {
					want = !want
				}
				if batch[tSlot] != want {
					t.Fatalf("slot %d: batch bit %v, scalar bit %v (pre %v, protected %v)",
						tSlot, batch[tSlot], want, pre[tSlot], protect[tSlot])
				}
			}
		})
	}
}

// TestProtectedSlotsUntouched asserts protection is absolute: with every
// slot protected, no model changes any bit — while stream consumption
// still advances (the next window's noise is unaffected by protection).
func TestProtectedSlotsUntouched(t *testing.T) {
	const w = 256
	allProt := make([]bool, w)
	for i := range allProt {
		allProt[i] = true
	}
	for label, m := range testModels() {
		pre := make([]bool, w)
		for i := range pre {
			pre[i] = i%3 == 0
		}
		got := applyBits(m.Sampler(7, 0), pre, allProt, []int{w})
		for i := range pre {
			if got[i] != pre[i] {
				t.Fatalf("%s: protected slot %d changed", label, i)
			}
		}
		// Consumption invariance: noise after a fully-protected window
		// equals noise after an unprotected one.
		a := m.Sampler(7, 0)
		b := m.Sampler(7, 0)
		wordsA := make([]uint64, w/64)
		wordsB := make([]uint64, w/64)
		prot := make([]uint64, w/64)
		for i := range prot {
			prot[i] = ^uint64(0)
		}
		a.ApplyInto(wordsA, 0, w, prot)
		b.ApplyInto(wordsB, 0, w, nil)
		tailA := make([]uint64, 4)
		tailB := make([]uint64, 4)
		a.ApplyInto(tailA, w, w+256, nil)
		b.ApplyInto(tailB, w, w+256, nil)
		for i := range tailA {
			if tailA[i] != tailB[i] {
				t.Fatalf("%s: protection changed downstream noise (word %d)", label, i)
			}
		}
	}
}

// TestMarginalRates checks each model's empirical flip rates against
// FlipRates on all-zero and all-one channels.
func TestMarginalRates(t *testing.T) {
	const slots = 200000
	for label, m := range testModels() {
		wantP01, wantP10 := m.FlipRates()
		for _, bit := range []bool{false, true} {
			s := m.Sampler(1234, 9)
			flips := 0
			for tSlot := 0; tSlot < slots; tSlot++ {
				if s.FlipAt(tSlot, bit, false) {
					flips++
				}
			}
			want := wantP01
			if bit {
				want = wantP10
			}
			got := float64(flips) / slots
			tol := 4*math.Sqrt(want*(1-want)/slots) + 0.002
			// Burst noise mixes slowly: give the Markov chain a looser
			// tolerance than the i.i.d. models.
			if strings.HasPrefix(label, NameGilbertElliott) {
				tol += 0.01
			}
			if math.Abs(got-want) > tol {
				t.Errorf("%s (bit=%v): flip rate %v, want ≈%v", label, bit, got, want)
			}
		}
	}
}

// TestGilbertElliottBursts sanity-checks the state machine: a chain that
// always flips in Bad and never in Good produces flips exactly while the
// replayed state sequence is Bad.
func TestGilbertElliottBursts(t *testing.T) {
	m := GilbertElliott{PGood: 0, PBad: 1, PGoodToBad: 0.1, PBadToGood: 0.3}
	s := m.Sampler(5, 2)
	// Replay the chain: identical stream, identical draws.
	r := rng.New(5).Split(0x6e6f697365, uint64(2))
	bad := false
	sawFlip, sawRun := false, 0
	for tSlot := 0; tSlot < 5000; tSlot++ {
		wantFlip := func() bool {
			p, q := 0.0, m.PGoodToBad
			if bad {
				p, q = 1.0, m.PBadToGood
			}
			flip := r.Float64() < p
			if r.Float64() < q {
				bad = !bad
			}
			return flip
		}()
		got := s.FlipAt(tSlot, false, false)
		if got != wantFlip {
			t.Fatalf("slot %d: flip %v, reference chain says %v", tSlot, got, wantFlip)
		}
		if got {
			sawFlip = true
			sawRun++
		} else {
			sawRun = 0
		}
	}
	if !sawFlip {
		t.Fatal("chain never entered the Bad state in 5000 slots")
	}
}

// TestApplyLaneIntoMatchesApplyInto pins the replicate-sliced batch path
// to the flat batch path for every model: lane k of a lane-transposed
// window, perturbed by ApplyLaneInto, carries exactly the post-noise
// bits a standalone replicate-k sampler's ApplyInto produces. The lanes
// share each transposed window (with junk in foreign lanes), chain
// across uneven windows, alternate protected and unprotected windows,
// and sit at different absolute slot offsets — the shape the sliced
// runners create when lanes' round counters advance independently.
func TestApplyLaneIntoMatchesApplyInto(t *testing.T) {
	windows := []int{1, 63, 64, 65, 300, 5, 128}
	lanes := []int{0, 3, 31, 63}
	starts := map[int]int{0: 0, 3: 640, 31: 7, 63: 100000}
	total := 0
	for _, w := range windows {
		total += w
	}
	laneSeed := func(k int) uint64 { return uint64(9000 + k) }
	for label, m := range testModels() {
		t.Run(label, func(t *testing.T) {
			data := rng.New(4242)
			pre := map[int][]bool{}
			protect := map[int][]bool{}
			for _, k := range lanes {
				p := make([]bool, total)
				pr := make([]bool, total)
				for i := range p {
					p[i] = data.Bool(0.5)
					pr[i] = data.Bool(0.25)
				}
				pre[k], protect[k] = p, pr
			}
			var laneMask uint64
			for _, k := range lanes {
				laneMask |= 1 << uint(k)
			}
			// Sliced run: one sampler per lane (per-replicate seeds, as the
			// sweep grouping layer derives them), all lanes perturbing the
			// same transposed window.
			sliced := map[int]Sampler{}
			for _, k := range lanes {
				sliced[k] = m.Sampler(laneSeed(k), 3)
			}
			got := map[int][]bool{}
			for _, k := range lanes {
				got[k] = make([]bool, total)
			}
			off := 0
			for wi, w := range windows {
				words := make([]uint64, w)
				prot := make([]uint64, w)
				junk := make([]uint64, w)
				for i := range words {
					words[i] = data.Uint64()
					junk[i] = words[i]
				}
				hasProt := wi%2 == 0
				for _, k := range lanes {
					bit := uint64(1) << uint(k)
					for i := 0; i < w; i++ {
						if pre[k][off+i] {
							words[i] |= bit
						} else {
							words[i] &^= bit
						}
						if hasProt && protect[k][off+i] {
							prot[i] |= bit
						}
					}
				}
				for _, k := range lanes {
					start := starts[k] + off
					var pm []uint64
					if hasProt {
						pm = prot
					}
					sliced[k].ApplyLaneInto(words, start, start+w, k, pm)
				}
				for i := 0; i < w; i++ {
					if words[i]&^laneMask != junk[i]&^laneMask {
						t.Fatalf("window %d slot %d: foreign lanes touched (%#x vs %#x)",
							wi, i, words[i], junk[i])
					}
					for _, k := range lanes {
						got[k][off+i] = words[i]>>(uint(k))&1 == 1
					}
				}
				off += w
			}
			// Flat reference, lane by lane: a fresh same-seed sampler over
			// the same absolute windows must agree bit for bit.
			for _, k := range lanes {
				ref := m.Sampler(laneSeed(k), 3)
				off := 0
				for wi, w := range windows {
					n := (w + 63) / 64
					words := make([]uint64, n)
					var prot []uint64
					hasProt := wi%2 == 0
					for i := 0; i < w; i++ {
						if pre[k][off+i] {
							words[i>>6] |= 1 << (uint(i) & 63)
						}
						if hasProt && protect[k][off+i] {
							if prot == nil {
								prot = make([]uint64, n)
							}
							prot[i>>6] |= 1 << (uint(i) & 63)
						}
					}
					start := starts[k] + off
					ref.ApplyInto(words, start, start+w, prot)
					for i := 0; i < w; i++ {
						want := words[i>>6]>>(uint(i)&63)&1 == 1
						if got[k][off+i] != want {
							t.Fatalf("lane %d window %d slot %d (abs %d): sliced bit %v, flat bit %v",
								k, wi, off+i, start+i, got[k][off+i], want)
						}
					}
					off += w
				}
			}
		})
	}
}

// TestApplyLaneIntoStreamConsumption is the per-lane stream-derivation
// pin: after a sliced window, each lane's sampler must sit at exactly
// the stream position a standalone replicate run would — so subsequent
// noise, sliced or flat, is byte-identical. Divergence here would let a
// sliced run drift from its lane-serial twin only after many rounds,
// which the bit-for-bit window test above could miss on a short run.
func TestApplyLaneIntoStreamConsumption(t *testing.T) {
	const w = 256
	for label, m := range testModels() {
		t.Run(label, func(t *testing.T) {
			slicedS := m.Sampler(77, 1)
			flat := m.Sampler(77, 1)
			words := make([]uint64, w)
			slicedS.ApplyLaneInto(words, 0, w, 19, nil)
			flatWords := make([]uint64, w/64)
			flat.ApplyInto(flatWords, 0, w, nil)
			// Cross paths for the tail: the sliced sampler continues flat,
			// the flat sampler continues sliced.
			tailFlat := make([]uint64, 4)
			slicedS.ApplyInto(tailFlat, w, w+256, nil)
			tailSliced := make([]uint64, 256)
			flat.ApplyLaneInto(tailSliced, w, w+256, 19, nil)
			for i := 0; i < 256; i++ {
				a := tailFlat[i>>6]>>(uint(i)&63)&1 == 1
				b := tailSliced[i]>>19&1 == 1
				if a != b {
					t.Fatalf("%s: lane and flat paths consumed differently (tail slot %d)", label, i)
				}
			}
		})
	}
}

// TestSamplerDeterminism: samplers are pure functions of (model, seed,
// node); distinct nodes get independent streams.
func TestSamplerDeterminism(t *testing.T) {
	for label, m := range testModels() {
		if Noiseless(m) {
			continue
		}
		a := m.Sampler(11, 4)
		b := m.Sampler(11, 4)
		c := m.Sampler(11, 5)
		same, diff := 0, 0
		for tSlot := 0; tSlot < 2000; tSlot++ {
			// Alternate the pre-noise bit so one-sided models (erasure)
			// expose their flip process on both channel values.
			bit := tSlot%2 == 1
			fa, fb, fc := a.FlipAt(tSlot, bit, false), b.FlipAt(tSlot, bit, false), c.FlipAt(tSlot, bit, false)
			if fa != fb {
				t.Fatalf("%s: equal (seed, node) samplers diverged at slot %d", label, tSlot)
			}
			if fa == fc {
				same++
			} else {
				diff++
			}
		}
		if diff == 0 && same > 0 {
			// Rates are low, so agreement is common; but some divergence
			// must appear across 2000 slots for every test model.
			t.Errorf("%s: node 4 and node 5 streams look identical", label)
		}
	}
}
