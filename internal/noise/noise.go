// Package noise defines the pluggable channel-noise models of the
// beeping network. The source paper analyzes one channel — every
// received bit flips independently with a single rate ε — but the model
// it builds on (Ashkenazi, Gelles & Leshem's noisy beeping networks)
// explicitly allows sender/receiver-side imperfections and
// direction-dependent error, and real beeping devices see interference
// that is bursty, not i.i.d. This package makes the channel an axis:
//
//   - symmetric{ε}        — the paper's binary symmetric channel;
//   - asymmetric{p01,p10} — false positives (silence heard as a beep)
//     and missed beeps at independent rates, conditioned on the
//     pre-noise bit;
//   - erasure{q,readAs}   — a slot is lost with probability q and reads
//     as a configurable constant (the receiver's erasure policy);
//   - gilbert-elliott{pGood,pBad,pG→B,pB→G} — correlated burst noise: a
//     per-node two-state Markov chain whose state selects the flip rate.
//
// A Model is a pure description (validatable, canonically
// serializable via Spec, registered by name for parsing); a Sampler is
// the model bound to one listener's private randomness. Samplers expose
// the same two execution paths the beep layer has always had: a
// word-parallel ApplyInto batch path mirroring rng.FlipSampler's
// XorFlipsInto for windowed phases, and a slot-serial FlipAt path for
// the round-by-round driver. The two paths consume the underlying
// stream identically, so they are interchangeable mid-run — the
// package tests pin ApplyInto ≡ FlipAt bit-for-bit per model.
//
// Determinism contract: a sampler is a pure function of (model, seed,
// node). The symmetric model's sampler derives its stream and consumes
// it exactly as the beep layer's original ε channel did, so every
// pre-existing record and experiment table is byte-identical under
// noise=symmetric.
package noise

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/rng"
)

// Model is one channel-noise model: a validated, canonically named
// parameterization from which per-listener samplers derive.
type Model interface {
	// Name is the model's registry key.
	Name() string
	// Spec returns the canonical spec string (Name plus colon-separated
	// parameters); Parse(Spec()) reconstructs an equal model. Canonical
	// means byte-stable: equal models always render equal specs, which
	// is what lets scenario content hashes treat the spec as identity.
	Spec() string
	// Validate checks the parameters.
	Validate() error
	// FlipRates returns the marginal per-slot error rates (p01, p10):
	// the stationary probability that a pre-noise 0 is received as 1,
	// and that a pre-noise 1 is received as 0. Decoder thresholds and
	// repetition factors calibrate against these; for correlated models
	// they are the long-run averages, deliberately blind to burstiness.
	FlipRates() (p01, p10 float64)
	// Noiseless reports that the channel can never flip any bit, in any
	// reachable state — engines skip sampler work entirely when true.
	// This is stricter than FlipRates() == (0, 0): a correlated model
	// whose stationary distribution forgets a transient state must
	// still report false if that state flips bits.
	Noiseless() bool
	// Sampler binds the model to listener node's private randomness
	// under seed. Samplers are single-listener, single-goroutine state;
	// distinct nodes' samplers are independent and may run concurrently.
	Sampler(seed uint64, node int) Sampler
}

// Sampler applies one listener's channel noise. Both paths consume the
// sampler's randomness for every slot they pass over — including
// protected slots — so noise downstream of a window never depends on
// what the window contained.
type Sampler interface {
	// ApplyInto perturbs the pre-noise reception words for absolute
	// slots [start, end): slot abs is bit abs-start. protect, when
	// non-nil, marks window-local slots delivered noise-free (a beeping
	// node's own slots when the network's NoisyOwn convention is off).
	// Slots before start that the sampler has not yet passed are
	// consumed and discarded, exactly like rng.FlipSampler.XorFlipsInto.
	ApplyInto(words []uint64, start, end int, protect []uint64)
	// FlipAt reports whether the reception at absolute slot t — whose
	// pre-noise value is bit — flips, honoring protected. It must
	// consume randomness identically to ApplyInto covering t.
	FlipAt(t int, bit, protected bool) bool
	// ApplyLaneInto is the replicate-sliced batch path: it perturbs one
	// lane of a lane-transposed window, where words[abs-start] holds 64
	// replicates' receptions of slot abs and bit lane belongs to this
	// sampler's replicate. protect, when non-nil, has the same transposed
	// layout. It must consume randomness identically to ApplyInto over
	// the same window — lane k of a sliced run reads byte-for-byte the
	// stream a standalone replicate-k run would — so the sliced engines'
	// receptions are bit-identical to lane-serial execution.
	ApplyLaneInto(words []uint64, start, end, lane int, protect []uint64)
}

// streamKey is the split domain of per-node channel noise. It is the
// key the beep layer has always used, so the symmetric model's stream
// is bit-for-bit the original channel stream.
const streamKey = 0x6e6f697365 // "noise"

// baseStream derives a listener's root noise stream.
func baseStream(seed uint64, node int) *rng.Stream {
	return rng.New(seed).Split(streamKey, uint64(node))
}

// subStream derives an independent per-purpose stream for models that
// need more than one (e.g. the asymmetric model's two flip processes).
func subStream(seed uint64, node int, purpose uint64) *rng.Stream {
	return rng.New(seed).Split(streamKey, uint64(node), purpose)
}

// Noiseless reports whether the model's channel never flips a bit, so
// engines can skip sampler work entirely (Model.Noiseless).
func Noiseless(m Model) bool { return m.Noiseless() }

// --- registry and spec parsing ---

// parser builds a model from the raw colon-separated arguments of a
// spec string; arity and argument syntax are checked by the parser
// itself. Most models take purely numeric arguments and register
// through Register's float-converting wrapper; models with symbolic
// arguments (the adversary's strategy name) register raw via
// RegisterSpec.
type parser func(args []string) (Model, error)

var (
	regMu   sync.RWMutex
	parsers = map[string]parser{}
)

// Register adds a numeric-argument model parser under name: every spec
// argument is converted to float64 before p runs, matching the historic
// parser contract.
func Register(name string, p func(args []float64) (Model, error)) {
	RegisterSpec(name, func(args []string) (Model, error) {
		fargs := make([]float64, 0, len(args))
		for _, a := range args {
			v, err := strconv.ParseFloat(a, 64)
			if err != nil {
				return nil, fmt.Errorf("noise: model %q: bad parameter %q", name, a)
			}
			fargs = append(fargs, v)
		}
		return p(fargs)
	})
}

// RegisterSpec adds a raw-argument model parser under name. Like the
// sim registries it panics on duplicates: registration is an init-time,
// programmer-controlled act.
func RegisterSpec(name string, p parser) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := parsers[name]; dup {
		panic(fmt.Sprintf("noise: duplicate model %q", name))
	}
	parsers[name] = p
}

// Names returns the registered model names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(parsers))
	for n := range parsers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Parse builds a validated model from a spec string of the form
// "name:arg1:arg2:…" (colon-separated so specs compose with
// comma-separated CLI axis lists). The returned model's Spec() is the
// canonical form of the input, which may differ from the input's
// spelling (e.g. "0.10" renders as "0.1").
func Parse(spec string) (Model, error) {
	parts := strings.Split(spec, ":")
	name := parts[0]
	regMu.RLock()
	p, ok := parsers[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("noise: unknown model %q in spec %q (registered: %s)", name, spec, strings.Join(Names(), ", "))
	}
	m, err := p(parts[1:])
	if err != nil {
		return nil, specError(spec, err)
	}
	if err := m.Validate(); err != nil {
		return nil, specError(spec, err)
	}
	return m, nil
}

// specError ties a parse or validation failure back to the offending
// spec and the registry. The bare arity/range messages don't say which
// spec produced them, and in a multi-axis grid with a dozen channel
// specs that context is the whole diagnosis.
func specError(spec string, err error) error {
	return fmt.Errorf("%w (offending spec %q; registered: %s)", err, spec, strings.Join(Names(), ", "))
}

// fmtF renders a parameter with the shortest exact representation, the
// same rule encoding/json uses — one spelling per value, so canonical
// specs are byte-stable.
func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func arity(name string, args []float64, want int) error {
	if len(args) != want {
		return fmt.Errorf("noise: model %q takes %d parameters, got %d", name, want, len(args))
	}
	return nil
}

func probRange(name, param string, v, hi float64) error {
	if v < 0 || v > hi || v != v {
		return fmt.Errorf("noise: %s: %s = %v outside [0, %v]", name, param, v, hi)
	}
	return nil
}
