package noise

import (
	"math"
	"strings"
	"testing"

	"repro/internal/rng"
)

// hostileModels returns one valid instance of every hostile model under
// every strategy. They are kept out of testModels deliberately: the
// stochastic-suite assumptions (real marginal rates, per-node stream
// divergence) don't hold for budgeted or deterministic channels.
func hostileModels() map[string]Model {
	return map[string]Model{
		"adversary-random": Adversary{Strategy: StrategyRandom, Budget: 40, A: 0.3},
		"adversary-solo":   Adversary{Strategy: StrategySolo, Budget: 40},
		"adversary-phase":  Adversary{Strategy: StrategyPhase, Budget: 40, A: 32, B: 5},
		"adversary-hub":    Adversary{Strategy: StrategyHub, Budget: 40, A: 0.5},
		"jam":              Jam{Duty: 3, Period: 10},
	}
}

func TestHostileParseRoundTrip(t *testing.T) {
	for label, m := range hostileModels() {
		spec := m.Spec()
		got, err := Parse(spec)
		if err != nil {
			t.Fatalf("%s: Parse(%q): %v", label, spec, err)
		}
		if got != m {
			t.Errorf("%s: Parse(%q) = %#v, want %#v", label, spec, got, m)
		}
		if got.Spec() != spec {
			t.Errorf("%s: spec not canonical: %q re-renders as %q", label, spec, got.Spec())
		}
	}
	// Defaults fill in and render canonically.
	for spec, want := range map[string]string{
		"adversary:random:100":    "adversary:random:100:0.5",
		"adversary:hub:100":       "adversary:hub:100:0.5",
		"adversary:phase:100":     "adversary:phase:100:64:8",
		"adversary:phase:100:16":  "adversary:phase:100:16:8",
		"adversary:solo:0":        "adversary:solo:0",
		"adversary:random:7:0.25": "adversary:random:7:0.25",
	} {
		m, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if m.Spec() != want {
			t.Errorf("Parse(%q).Spec() = %q, want %q", spec, m.Spec(), want)
		}
	}
}

func TestHostileParseRejectsInvalid(t *testing.T) {
	bad := []string{
		"adversary",                // no strategy/budget
		"adversary:solo",           // no budget
		"adversary:warp:10",        // unknown strategy
		"adversary:solo:ten",       // non-integer budget
		"adversary:solo:1.5",       // non-integer budget
		"adversary:solo:-1",        // negative budget
		"adversary:solo:10:0.5",    // solo takes no args
		"adversary:random:10:0",    // p outside (0, 1]
		"adversary:random:10:1.1",  // p outside (0, 1]
		"adversary:hub:10:-0.1",    // frac outside [0, 1]
		"adversary:hub:10:2",       // frac outside [0, 1]
		"adversary:phase:10:0:0",   // period < 1
		"adversary:phase:10:8:9",   // width > period
		"adversary:phase:10:8.5:2", // non-integer period
		"jam:1",                    // arity
		"jam:1:0",                  // period < 1
		"jam:-1:10",                // duty < 0
		"jam:11:10",                // duty > period
		"jam:5:10",                 // duty fraction at capacity
		"jam:1.5:10",               // non-integer duty
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", spec)
		}
	}
	// Hand-built models with unused parameters set must fail validation:
	// they would collide with the canonical model under one spec.
	for _, m := range []Model{
		Adversary{Strategy: StrategySolo, Budget: 5, A: 1},
		Adversary{Strategy: StrategyRandom, Budget: 5, A: 0.5, B: 1},
		Adversary{Strategy: StrategyHub, Budget: 5, A: 0.5, B: 1},
	} {
		if err := m.Validate(); err == nil {
			t.Errorf("%#v validated despite unused parameters", m)
		}
	}
}

func TestHostileCalibration(t *testing.T) {
	adv := Adversary{Strategy: StrategySolo, Budget: 100}
	jam := Jam{Duty: 1, Period: 10}
	for _, m := range []Model{adv, jam} {
		if !Hostile(m) {
			t.Errorf("%s not Hostile", m.Spec())
		}
	}
	if Hostile(Symmetric{Eps: 0.1}) {
		t.Error("symmetric reported Hostile")
	}
	if got := CalibrationRate(adv); got != AdversaryCalibRate {
		t.Errorf("adversary CalibrationRate = %v, want %v", got, AdversaryCalibRate)
	}
	if got := CalibrationRate(jam); got != 0.1 {
		t.Errorf("jam CalibrationRate = %v, want 0.1", got)
	}
	if got := CalibrationRate(Asymmetric{P01: 0.02, P10: 0.2}); got != 0.2 {
		t.Errorf("stochastic CalibrationRate = %v, want max marginal 0.2", got)
	}
	if p01, p10 := adv.FlipRates(); p01 != 0 || p10 != 0 {
		t.Errorf("adversary FlipRates = (%v, %v), want (0, 0)", p01, p10)
	}
	if !Noiseless(Adversary{Strategy: StrategySolo, Budget: 0}) {
		t.Error("zero-budget adversary should be noiseless")
	}
	if Noiseless(adv) {
		t.Error("budgeted adversary reported noiseless")
	}
	if !Noiseless(Jam{Duty: 0, Period: 4}) {
		t.Error("zero-duty jam should be noiseless")
	}
}

// TestHostileThreePathConformance is the hostile-model edition of the
// PR 5/PR 6 equivalence suite: per strategy, the scalar FlipAt path,
// the flat ApplyInto path, and the lane-transposed ApplyLaneInto path
// produce identical post-noise bits — and identical budget spend —
// over identical pre-noise data, protection masks, and windows.
func TestHostileThreePathConformance(t *testing.T) {
	windows := []int{1, 63, 64, 65, 300, 5, 128}
	total := 0
	for _, w := range windows {
		total += w
	}
	for label, m := range hostileModels() {
		t.Run(label, func(t *testing.T) {
			data := rng.New(777)
			pre := make([]bool, total)
			protect := make([]bool, total)
			for i := range pre {
				pre[i] = data.Bool(0.5)
				protect[i] = data.Bool(0.2)
			}
			batch := applyBits(m.Sampler(42, 3), pre, protect, windows)
			// Scalar reference.
			scalar := m.Sampler(42, 3)
			for tSlot := 0; tSlot < total; tSlot++ {
				want := pre[tSlot]
				if scalar.FlipAt(tSlot, pre[tSlot], protect[tSlot]) {
					want = !want
				}
				if batch[tSlot] != want {
					t.Fatalf("slot %d: batch bit %v, scalar bit %v (pre %v, protected %v)",
						tSlot, batch[tSlot], want, pre[tSlot], protect[tSlot])
				}
			}
			// Lane path: same data in lane 19 of a transposed window, junk
			// in every other lane.
			lane := 19
			laneS := m.Sampler(42, 3)
			laneOut := make([]bool, total)
			off := 0
			for _, w := range windows {
				words := make([]uint64, w)
				prot := make([]uint64, w)
				var junk []uint64
				for i := range words {
					words[i] = data.Uint64() &^ (1 << uint(lane))
					junk = append(junk, words[i])
					if pre[off+i] {
						words[i] |= 1 << uint(lane)
					}
					if protect[off+i] {
						prot[i] |= 1 << uint(lane)
					}
				}
				laneS.ApplyLaneInto(words, off, off+w, lane, prot)
				for i := 0; i < w; i++ {
					if words[i]&^(1<<uint(lane)) != junk[i] {
						t.Fatalf("window slot %d: foreign lanes touched", i)
					}
					laneOut[off+i] = words[i]>>uint(lane)&1 == 1
				}
				off += w
			}
			for tSlot := 0; tSlot < total; tSlot++ {
				if laneOut[tSlot] != batch[tSlot] {
					t.Fatalf("slot %d: lane bit %v, batch bit %v", tSlot, laneOut[tSlot], batch[tSlot])
				}
			}
		})
	}
}

// countFlips runs a sampler over pre-noise data and counts applied
// flips, exercising all three paths in rotation.
func countFlips(t *testing.T, m Model, seed uint64, node, slots int, preBit func(int) bool, protAt func(int) bool) int {
	t.Helper()
	s := m.Sampler(seed, node)
	flips := 0
	tSlot := 0
	mode := 0
	for tSlot < slots {
		w := 64
		if slots-tSlot < w {
			w = slots - tSlot
		}
		switch mode % 3 {
		case 0: // scalar
			for i := 0; i < w; i++ {
				if s.FlipAt(tSlot+i, preBit(tSlot+i), protAt(tSlot+i)) {
					flips++
				}
			}
		case 1: // flat batch
			words := make([]uint64, (w+63)/64)
			prot := make([]uint64, (w+63)/64)
			before := 0
			for i := 0; i < w; i++ {
				if preBit(tSlot + i) {
					words[i>>6] |= 1 << (uint(i) & 63)
					before++
				}
				if protAt(tSlot + i) {
					prot[i>>6] |= 1 << (uint(i) & 63)
				}
			}
			s.ApplyInto(words, tSlot, tSlot+w, prot)
			for i := 0; i < w; i++ {
				if (words[i>>6]>>(uint(i)&63)&1 == 1) != preBit(tSlot+i) {
					flips++
				}
			}
		case 2: // lane batch
			const lane = 7
			words := make([]uint64, w)
			prot := make([]uint64, w)
			for i := 0; i < w; i++ {
				if preBit(tSlot + i) {
					words[i] |= 1 << lane
				}
				if protAt(tSlot + i) {
					prot[i] |= 1 << lane
				}
			}
			s.ApplyLaneInto(words, tSlot, tSlot+w, lane, prot)
			for i := 0; i < w; i++ {
				if (words[i]>>lane&1 == 1) != preBit(tSlot+i) {
					flips++
				}
			}
		}
		tSlot += w
		mode++
	}
	return flips
}

// TestAdversaryBudgetNeverExceeded is the budget property test: across
// strategies, budgets, and hostile traffic designed to invite spending,
// the number of applied flips never exceeds the budget — and a greedy
// strategy facing unbounded targets spends exactly its budget.
func TestAdversaryBudgetNeverExceeded(t *testing.T) {
	const slots = 4096
	allOnes := func(int) bool { return true }
	noProt := func(int) bool { return false }
	for _, budget := range []int{0, 1, 7, 64, 1000} {
		for strat, m := range map[string]Model{
			StrategyRandom: Adversary{Strategy: StrategyRandom, Budget: budget, A: 0.9},
			StrategySolo:   Adversary{Strategy: StrategySolo, Budget: budget},
			StrategyPhase:  Adversary{Strategy: StrategyPhase, Budget: budget, A: 4, B: 2},
			StrategyHub:    Adversary{Strategy: StrategyHub, Budget: budget, A: 0.5},
		} {
			flips := countFlips(t, m, 11, 2, slots, allOnes, noProt)
			if flips > budget {
				t.Errorf("%s budget %d: %d flips applied", strat, budget, flips)
			}
			// All strategies above target all-ones traffic densely enough
			// (random at p=0.9 over 4096 slots) to exhaust small budgets.
			if budget <= 1000 && strat != StrategyRandom && flips != budget {
				t.Errorf("%s budget %d: greedy spend was %d", strat, budget, flips)
			}
		}
	}
}

// TestAdversaryProtectedSpendsNothing: protected slots are never
// corrupted and never charged — the budget survives a fully-protected
// window intact and is spent in full afterwards.
func TestAdversaryProtectedSpendsNothing(t *testing.T) {
	const budget = 32
	m := Adversary{Strategy: StrategySolo, Budget: budget}
	allOnes := func(int) bool { return true }
	flips := countFlips(t, m, 3, 0, 4096, allOnes, func(t int) bool { return t < 2048 })
	if flips != budget {
		t.Errorf("budget after protected prefix: spent %d, want %d", flips, budget)
	}
	// Fully protected run: nothing spent, nothing flipped.
	if flips := countFlips(t, m, 3, 0, 4096, allOnes, func(int) bool { return true }); flips != 0 {
		t.Errorf("fully protected run applied %d flips", flips)
	}
}

// TestAdversaryCountingAgreesWithSpend pins the Accountant surface: a
// Counting wrapper around an adversary sampler observes exactly the
// flips the budget pays for, on the flat and lane paths alike.
func TestAdversaryCountingAgreesWithSpend(t *testing.T) {
	m := Adversary{Strategy: StrategySolo, Budget: 10}
	var acc countingAcc
	s := Counting(m.Sampler(5, 1), &acc)
	words := []uint64{^uint64(0), ^uint64(0)} // 128 detected beeps
	s.ApplyInto(words, 0, 128, nil)
	if int(acc) != 10 {
		t.Errorf("flat path: accountant saw %d, want 10", acc)
	}
	acc = 0
	s = Counting(m.Sampler(5, 1), &acc)
	lane := make([]uint64, 128)
	for i := range lane {
		lane[i] = 1 << 9
	}
	s.ApplyLaneInto(lane, 0, 128, 9, nil)
	if int(acc) != 10 {
		t.Errorf("lane path: accountant saw %d, want 10", acc)
	}
}

type countingAcc int64

func (a *countingAcc) Add(n int64) { *a += countingAcc(n) }

// TestAdversaryPositionDeterminism: stream consumption is per-slot and
// independent of budget state or decisions, so two samplers differing
// only in budget agree on every corruption decision until the smaller
// budget runs out — the greedy-monotonicity invariant FrontierSearch's
// binary search rests on.
func TestAdversaryPositionDeterminism(t *testing.T) {
	for _, strat := range []string{StrategyRandom, StrategySolo, StrategyPhase, StrategyHub} {
		small := Adversary{Strategy: strat, Budget: 20}
		big := Adversary{Strategy: strat, Budget: 400}
		switch strat {
		case StrategyRandom:
			small.A, big.A = 0.3, 0.3
		case StrategyPhase:
			small.A, small.B, big.A, big.B = 16, 3, 16, 3
		case StrategyHub:
			small.A, big.A = 0.5, 0.5
		}
		a := small.Sampler(9, 4)
		b := big.Sampler(9, 4)
		spent := 0
		for tSlot := 0; tSlot < 2000; tSlot++ {
			bit := tSlot%3 != 0
			fa := a.FlipAt(tSlot, bit, false)
			fb := b.FlipAt(tSlot, bit, false)
			if spent < 20 && fa != fb {
				t.Fatalf("%s: budgets diverged at slot %d before exhaustion", strat, tSlot)
			}
			if spent >= 20 && fa {
				t.Fatalf("%s: exhausted sampler flipped at slot %d", strat, tSlot)
			}
			if fb {
				spent++
			}
		}
	}
}

// TestAdversaryTopologyBinding: hub spends only at high-degree
// listeners once bound; unbound it degrades to treating every listener
// as a hub. Binding preserves model identity.
func TestAdversaryTopologyBinding(t *testing.T) {
	m := Adversary{Strategy: StrategyHub, Budget: 50, A: 0.5}
	tb, ok := Model(m).(TopologyBinder)
	if !ok {
		t.Fatal("Adversary does not implement TopologyBinder")
	}
	bound := tb.BindTopology([]int{1, 10}, 10)
	if bound.Spec() != m.Spec() || bound.Name() != m.Name() {
		t.Fatalf("binding changed identity: %q vs %q", bound.Spec(), m.Spec())
	}
	allOnes := func(int) bool { return true }
	noProt := func(int) bool { return false }
	if flips := countFlips(t, bound, 1, 0, 512, allOnes, noProt); flips != 0 {
		t.Errorf("low-degree node saw %d flips, want 0", flips)
	}
	if flips := countFlips(t, bound, 1, 1, 512, allOnes, noProt); flips != 50 {
		t.Errorf("hub node saw %d flips, want full budget 50", flips)
	}
	if flips := countFlips(t, m, 1, 0, 512, allOnes, noProt); flips != 50 {
		t.Errorf("unbound hub saw %d flips, want full budget 50", flips)
	}
	// Jam has no topology to bind.
	if _, ok := Model(Jam{Duty: 1, Period: 4}).(TopologyBinder); ok {
		t.Error("Jam should not implement TopologyBinder")
	}
}

// TestSoloNeverFabricates: the solo strategy only suppresses detected
// beeps; an all-silent channel stays silent whatever the budget.
func TestSoloNeverFabricates(t *testing.T) {
	m := Adversary{Strategy: StrategySolo, Budget: 1 << 20}
	allZero := func(int) bool { return false }
	noProt := func(int) bool { return false }
	if flips := countFlips(t, m, 2, 0, 8192, allZero, noProt); flips != 0 {
		t.Errorf("solo fabricated %d beeps on a silent channel", flips)
	}
}

// TestJamSchedule: the jammer is deterministic, global, and one-sided —
// it saturates silent slots on its duty cycle and never erases a beep.
func TestJamSchedule(t *testing.T) {
	m := Jam{Duty: 3, Period: 10}
	s := m.Sampler(123, 0)
	other := m.Sampler(456, 9)
	for tSlot := 0; tSlot < 200; tSlot++ {
		wantJam := tSlot%10 < 3
		if got := s.FlipAt(tSlot, false, false); got != wantJam {
			t.Fatalf("slot %d: silent-slot jam = %v, want %v", tSlot, got, wantJam)
		}
		if s.FlipAt(tSlot, true, false) {
			t.Fatalf("slot %d: jam erased a beep", tSlot)
		}
		if other.FlipAt(tSlot, false, false) != wantJam {
			t.Fatalf("slot %d: jam schedule varies across seed/node", tSlot)
		}
	}
	p01, p10 := m.FlipRates()
	if math.Abs(p01-0.3) > 1e-15 || p10 != 0 {
		t.Errorf("jam FlipRates = (%v, %v), want (0.3, 0)", p01, p10)
	}
}

// FuzzAdversaryBudget fuzzes the budget invariants across strategies:
// applied flips never exceed the budget, and the batch path agrees with
// a fresh scalar-path sampler bit for bit.
func FuzzAdversaryBudget(f *testing.F) {
	f.Add(uint64(1), 10, 0, uint8(0), 128)
	f.Add(uint64(7), 0, 3, uint8(1), 64)
	f.Add(uint64(9), 1000, 1, uint8(2), 300)
	f.Add(uint64(3), 33, 2, uint8(3), 65)
	f.Fuzz(func(t *testing.T, seed uint64, budget, node int, stratIdx uint8, slots int) {
		if budget < 0 || budget > 1<<20 || slots < 1 || slots > 4096 || node < 0 || node > 1<<20 {
			t.Skip()
		}
		strats := []Adversary{
			{Strategy: StrategyRandom, Budget: budget, A: 0.7},
			{Strategy: StrategySolo, Budget: budget},
			{Strategy: StrategyPhase, Budget: budget, A: 8, B: 3},
			{Strategy: StrategyHub, Budget: budget, A: 0.5},
		}
		m := strats[int(stratIdx)%len(strats)]
		if err := m.Validate(); err != nil {
			t.Fatalf("fuzz model invalid: %v", err)
		}
		pre := func(t int) bool { return t%2 == 0 || t%5 == 0 }
		prot := func(t int) bool { return t%7 == 0 }
		flips := countFlips(t, m, seed, node, slots, pre, prot)
		if flips > budget {
			t.Fatalf("%s: %d flips exceed budget %d", m.Spec(), flips, budget)
		}
		// Batch ≡ scalar over the same traffic.
		batchS := m.Sampler(seed, node)
		scalarS := m.Sampler(seed, node)
		words := make([]uint64, (slots+63)/64)
		pm := make([]uint64, (slots+63)/64)
		for i := 0; i < slots; i++ {
			if pre(i) {
				words[i>>6] |= 1 << (uint(i) & 63)
			}
			if prot(i) {
				pm[i>>6] |= 1 << (uint(i) & 63)
			}
		}
		batchS.ApplyInto(words, 0, slots, pm)
		for i := 0; i < slots; i++ {
			want := pre(i)
			if scalarS.FlipAt(i, pre(i), prot(i)) {
				want = !want
			}
			if (words[i>>6]>>(uint(i)&63)&1 == 1) != want {
				t.Fatalf("%s: batch and scalar disagree at slot %d", m.Spec(), i)
			}
		}
	})
}

// TestHostileSpecErrorsCarryStrategyList: the unknown-strategy error
// names the valid strategies, mirroring the registry's unknown-model
// diagnostics.
func TestHostileSpecErrorsCarryStrategyList(t *testing.T) {
	_, err := Parse("adversary:warp:10")
	if err == nil {
		t.Fatal("unknown strategy accepted")
	}
	for _, s := range []string{StrategyHub, StrategyPhase, StrategyRandom, StrategySolo} {
		if !strings.Contains(err.Error(), s) {
			t.Errorf("unknown-strategy error omits %q: %v", s, err)
		}
	}
}
