package noise

import "math/bits"

// Accountant receives flip counts from a counting sampler. It is the
// telemetry layer's accounting hook (obs.Counter satisfies it) declared
// here as a one-method interface so this package stays free of an obs
// dependency — noise is below obs in the import graph.
//
// Implementations must be safe for concurrent Add calls: distinct
// listeners' samplers run on distinct goroutines but may share one
// accountant.
type Accountant interface {
	// Add records delta applied flips. Deltas are non-negative.
	Add(delta int64)
}

// Counting wraps s so that every flip it actually applies — a received
// slot whose value differs from its pre-noise value — is counted into
// acc. The wrapper is observation-only and preserves the wrapped
// sampler's behavior exactly: it delegates all randomness consumption,
// never reorders or adds stream reads, and counts by comparing words
// before and after (XOR popcount) rather than by re-deriving the
// model's decisions, so receptions are byte-identical wrapped or not.
// Protected slots and erasure slots that happen to re-assert the
// current value change no bits and count zero, matching the FlipAt
// definition of a flip (returns true iff the reception changes).
//
// acc == nil or s == nil returns s unchanged, so call sites can wrap
// unconditionally.
func Counting(s Sampler, acc Accountant) Sampler {
	if s == nil || acc == nil {
		return s
	}
	return &countingSampler{s: s, acc: acc}
}

// countingSampler snapshots the affected words around each batch apply
// and popcounts the XOR delta. Like any Sampler it is single-listener,
// single-goroutine state; the scratch buffer is reused across windows.
type countingSampler struct {
	s       Sampler
	acc     Accountant
	scratch []uint64
}

func (c *countingSampler) ApplyInto(words []uint64, start, end int, protect []uint64) {
	n := (end - start + 63) / 64
	if n < 0 || n > len(words) {
		n = len(words)
	}
	pre := c.snapshot(words[:n])
	c.s.ApplyInto(words, start, end, protect)
	var flips int64
	for i, w := range words[:n] {
		flips += int64(bits.OnesCount64(w ^ pre[i]))
	}
	if flips != 0 {
		c.acc.Add(flips)
	}
}

func (c *countingSampler) FlipAt(t int, bit, protected bool) bool {
	flip := c.s.FlipAt(t, bit, protected)
	if flip {
		c.acc.Add(1)
	}
	return flip
}

func (c *countingSampler) ApplyLaneInto(words []uint64, start, end, lane int, protect []uint64) {
	n := end - start
	if n < 0 || n > len(words) {
		n = len(words)
	}
	pre := c.snapshot(words[:n])
	c.s.ApplyLaneInto(words, start, end, lane, protect)
	mask := uint64(1) << uint(lane)
	var flips int64
	for i, w := range words[:n] {
		flips += int64(bits.OnesCount64((w ^ pre[i]) & mask))
	}
	if flips != 0 {
		c.acc.Add(flips)
	}
}

func (c *countingSampler) snapshot(words []uint64) []uint64 {
	if cap(c.scratch) < len(words) {
		c.scratch = make([]uint64, len(words))
	}
	c.scratch = c.scratch[:len(words)]
	copy(c.scratch, words)
	return c.scratch
}
