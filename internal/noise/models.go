package noise

import (
	"fmt"

	"repro/internal/rng"
)

// Registered model names.
const (
	NameSymmetric      = "symmetric"
	NameAsymmetric     = "asymmetric"
	NameErasure        = "erasure"
	NameGilbertElliott = "gilbert-elliott"
)

func init() {
	Register(NameSymmetric, func(args []float64) (Model, error) {
		if err := arity(NameSymmetric, args, 1); err != nil {
			return nil, err
		}
		return Symmetric{Eps: args[0]}, nil
	})
	Register(NameAsymmetric, func(args []float64) (Model, error) {
		if err := arity(NameAsymmetric, args, 2); err != nil {
			return nil, err
		}
		return Asymmetric{P01: args[0], P10: args[1]}, nil
	})
	Register(NameErasure, func(args []float64) (Model, error) {
		if err := arity(NameErasure, args, 2); err != nil {
			return nil, err
		}
		if args[1] != 0 && args[1] != 1 {
			return nil, fmt.Errorf("noise: erasure read-as policy must be 0 or 1, got %v", args[1])
		}
		return Erasure{Q: args[0], ReadAs1: args[1] == 1}, nil
	})
	Register(NameGilbertElliott, func(args []float64) (Model, error) {
		if err := arity(NameGilbertElliott, args, 4); err != nil {
			return nil, err
		}
		return GilbertElliott{PGood: args[0], PBad: args[1], PGoodToBad: args[2], PBadToGood: args[3]}, nil
	})
}

// flipRate validates an error rate the decoders must be able to fight:
// [0, ½), the same capacity bound the symmetric channel has always had.
func flipRate(name, param string, v float64) error {
	if v < 0 || v >= 0.5 || v != v {
		return fmt.Errorf("noise: %s: %s = %v outside [0, 0.5)", name, param, v)
	}
	return nil
}

// --- symmetric ---

// Symmetric is the paper's binary symmetric channel: every received bit
// flips independently with probability Eps. Its sampler is bit-for-bit
// the beep layer's original ε channel — same stream derivation, same
// geometric flip enumeration — which is what keeps every symmetric
// record byte-identical across the pluggable-model refactor.
type Symmetric struct {
	Eps float64
}

func (m Symmetric) Name() string { return NameSymmetric }
func (m Symmetric) Spec() string { return NameSymmetric + ":" + fmtF(m.Eps) }
func (m Symmetric) Validate() error {
	return flipRate(NameSymmetric, "ε", m.Eps)
}
func (m Symmetric) FlipRates() (p01, p10 float64) { return m.Eps, m.Eps }
func (m Symmetric) Noiseless() bool               { return m.Eps == 0 }

func (m Symmetric) Sampler(seed uint64, node int) Sampler {
	return &symmetricSampler{fs: rng.NewFlipSampler(baseStream(seed, node), m.Eps)}
}

type symmetricSampler struct {
	fs *rng.FlipSampler
}

func (s *symmetricSampler) ApplyInto(words []uint64, start, end int, protect []uint64) {
	if protect == nil {
		// Every slot is noisy: the flips XOR straight into the words.
		s.fs.XorFlipsInto(words, start, end)
		return
	}
	for {
		abs, ok := s.fs.Next(end)
		if !ok {
			return
		}
		if abs < start {
			continue // positions consumed by earlier windows
		}
		i := abs - start
		if protect[i>>6]>>(uint(i)&63)&1 == 1 {
			continue // noise-free slot; the flip is consumed, not applied
		}
		words[i>>6] ^= 1 << (uint(i) & 63)
	}
}

func (s *symmetricSampler) ApplyLaneInto(words []uint64, start, end, lane int, protect []uint64) {
	bit := uint64(1) << uint(lane)
	for {
		abs, ok := s.fs.Next(end)
		if !ok {
			return
		}
		if abs < start {
			continue // positions consumed by earlier windows
		}
		i := abs - start
		if protect != nil && protect[i]&bit != 0 {
			continue // noise-free cell; the flip is consumed, not applied
		}
		words[i] ^= bit
	}
}

func (s *symmetricSampler) FlipAt(t int, bit, protected bool) bool {
	if !consumeAt(s.fs, t) {
		return false
	}
	return !protected
}

// consumeAt advances fs through slot t, reporting whether a flip landed
// exactly on t. Stale positions before t are consumed and discarded.
func consumeAt(fs *rng.FlipSampler, t int) bool {
	for fs.Peek() < t {
		fs.Skip()
	}
	if fs.Peek() != t {
		return false
	}
	fs.Skip()
	return true
}

// --- asymmetric ---

// Asymmetric is a binary channel with direction-dependent error: a
// silent slot is heard as a beep with probability P01 (false positive)
// and a beeped slot is missed with probability P10, independently per
// slot. The two flip processes draw from independent sub-streams and
// both advance over every slot, so stream consumption never depends on
// the transmitted data.
type Asymmetric struct {
	P01 float64 // Pr[0 → 1]: false positive rate
	P10 float64 // Pr[1 → 0]: missed-beep rate
}

func (m Asymmetric) Name() string { return NameAsymmetric }
func (m Asymmetric) Spec() string {
	return NameAsymmetric + ":" + fmtF(m.P01) + ":" + fmtF(m.P10)
}
func (m Asymmetric) Validate() error {
	if err := flipRate(NameAsymmetric, "p01", m.P01); err != nil {
		return err
	}
	return flipRate(NameAsymmetric, "p10", m.P10)
}
func (m Asymmetric) FlipRates() (p01, p10 float64) { return m.P01, m.P10 }
func (m Asymmetric) Noiseless() bool               { return m.P01 == 0 && m.P10 == 0 }

func (m Asymmetric) Sampler(seed uint64, node int) Sampler {
	return &asymmetricSampler{
		fs01: rng.NewFlipSampler(subStream(seed, node, 1), m.P01),
		fs10: rng.NewFlipSampler(subStream(seed, node, 2), m.P10),
	}
}

type asymmetricSampler struct {
	fs01, fs10   *rng.FlipSampler
	buf01, buf10 []uint64 // per-window flip masks, reused across calls
}

func (s *asymmetricSampler) ApplyInto(words []uint64, start, end int, protect []uint64) {
	if end <= start {
		return
	}
	n := (end - start + 63) >> 6
	s.buf01 = zeroed(s.buf01, n)
	s.buf10 = zeroed(s.buf10, n)
	s.fs01.XorFlipsInto(s.buf01, start, end)
	s.fs10.XorFlipsInto(s.buf10, start, end)
	for i := 0; i < n; i++ {
		// 0→1 flips land on 0-bits, 1→0 flips on 1-bits.
		fl := (s.buf01[i] &^ words[i]) | (s.buf10[i] & words[i])
		if protect != nil {
			fl &^= protect[i]
		}
		words[i] ^= fl
	}
}

func (s *asymmetricSampler) ApplyLaneInto(words []uint64, start, end, lane int, protect []uint64) {
	bit := uint64(1) << uint(lane)
	a, aok := laneNext(s.fs01, start, end)
	b, bok := laneNext(s.fs10, start, end)
	for aok || bok {
		var i int
		var flip bool
		switch {
		case aok && bok && a == b:
			// Both processes hit: fl = (b01 &^ w) | (b10 & w) is 1 for
			// either pre-noise value, so the slot flips unconditionally.
			i, flip = a-start, true
			a, aok = laneNext(s.fs01, start, end)
			b, bok = laneNext(s.fs10, start, end)
		case aok && (!bok || a < b):
			i = a - start
			flip = words[i]&bit == 0 // 0→1 flips land on 0-bits
			a, aok = laneNext(s.fs01, start, end)
		default:
			i = b - start
			flip = words[i]&bit != 0 // 1→0 flips land on 1-bits
			b, bok = laneNext(s.fs10, start, end)
		}
		if flip && (protect == nil || protect[i]&bit == 0) {
			words[i] ^= bit
		}
	}
}

// laneNext returns fs's next flip position in [start, end), consuming
// and discarding stale positions from earlier windows like XorFlipsInto.
func laneNext(fs *rng.FlipSampler, start, end int) (int, bool) {
	for {
		pos, ok := fs.Next(end)
		if !ok || pos >= start {
			return pos, ok
		}
	}
}

func (s *asymmetricSampler) FlipAt(t int, bit, protected bool) bool {
	// Both processes consume their streams unconditionally: the draw a
	// protected or opposite-bit slot wastes here is the draw ApplyInto's
	// mask build would have spent.
	hit01 := consumeAt(s.fs01, t)
	hit10 := consumeAt(s.fs10, t)
	if protected {
		return false
	}
	if bit {
		return hit10
	}
	return hit01
}

// zeroed returns buf resized to n words, all zero.
func zeroed(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// --- erasure ---

// Erasure loses each slot independently with probability Q; a lost slot
// reads as the receiver's constant erasure policy (ReadAs1). Marginally
// it is a fully asymmetric channel — read-as-0 only misses beeps,
// read-as-1 only fabricates them — but as a model it keeps the policy
// explicit, matching receivers that squelch (read 0) or saturate
// (read 1) on carrier loss.
type Erasure struct {
	Q       float64 // erasure probability per slot
	ReadAs1 bool    // erased slots read as 1 (default policy reads 0)
}

func (m Erasure) Name() string { return NameErasure }
func (m Erasure) Spec() string {
	policy := "0"
	if m.ReadAs1 {
		policy = "1"
	}
	return NameErasure + ":" + fmtF(m.Q) + ":" + policy
}
func (m Erasure) Validate() error {
	return flipRate(NameErasure, "q", m.Q)
}
func (m Erasure) FlipRates() (p01, p10 float64) {
	if m.ReadAs1 {
		return m.Q, 0
	}
	return 0, m.Q
}
func (m Erasure) Noiseless() bool { return m.Q == 0 }

func (m Erasure) Sampler(seed uint64, node int) Sampler {
	return &erasureSampler{
		fs:      rng.NewFlipSampler(baseStream(seed, node), m.Q),
		readAs1: m.ReadAs1,
	}
}

type erasureSampler struct {
	fs      *rng.FlipSampler
	readAs1 bool
	buf     []uint64
}

func (s *erasureSampler) ApplyInto(words []uint64, start, end int, protect []uint64) {
	if end <= start {
		return
	}
	n := (end - start + 63) >> 6
	s.buf = zeroed(s.buf, n)
	s.fs.XorFlipsInto(s.buf, start, end)
	for i := 0; i < n; i++ {
		mask := s.buf[i]
		if protect != nil {
			mask &^= protect[i]
		}
		if s.readAs1 {
			words[i] |= mask
		} else {
			words[i] &^= mask
		}
	}
}

func (s *erasureSampler) ApplyLaneInto(words []uint64, start, end, lane int, protect []uint64) {
	bit := uint64(1) << uint(lane)
	for {
		abs, ok := laneNext(s.fs, start, end)
		if !ok {
			return
		}
		i := abs - start
		if protect != nil && protect[i]&bit != 0 {
			continue // erasure consumed but not applied, like ApplyInto's mask
		}
		if s.readAs1 {
			words[i] |= bit
		} else {
			words[i] &^= bit
		}
	}
}

func (s *erasureSampler) FlipAt(t int, bit, protected bool) bool {
	if !consumeAt(s.fs, t) || protected {
		return false
	}
	return bit != s.readAs1 // erased slots read as the policy constant
}

// --- gilbert-elliott ---

// GilbertElliott is the classic two-state burst-noise channel: each
// node's channel sits in a Good or Bad state, flips the slot's
// reception with the state's rate, then transitions with the state's
// exit probability. Chains start in Good. The stationary flip rate
// (FlipRates) is π_B = pG→B/(pG→B+pB→G) mixed over the state rates —
// the i.i.d. rate an unsuspecting decoder would calibrate against,
// which is exactly what makes the model interesting: Algorithm 1's
// analysis assumes independence across slots, and this channel
// concentrates the same marginal error into bursts.
type GilbertElliott struct {
	PGood      float64 // flip rate in the Good state
	PBad       float64 // flip rate in the Bad state
	PGoodToBad float64 // per-slot transition probability Good → Bad
	PBadToGood float64 // per-slot transition probability Bad → Good
}

func (m GilbertElliott) Name() string { return NameGilbertElliott }
func (m GilbertElliott) Spec() string {
	return NameGilbertElliott + ":" + fmtF(m.PGood) + ":" + fmtF(m.PBad) +
		":" + fmtF(m.PGoodToBad) + ":" + fmtF(m.PBadToGood)
}

func (m GilbertElliott) Validate() error {
	if err := probRange(NameGilbertElliott, "pGood", m.PGood, 1); err != nil {
		return err
	}
	if err := probRange(NameGilbertElliott, "pBad", m.PBad, 1); err != nil {
		return err
	}
	if err := probRange(NameGilbertElliott, "pG→B", m.PGoodToBad, 1); err != nil {
		return err
	}
	if err := probRange(NameGilbertElliott, "pB→G", m.PBadToGood, 1); err != nil {
		return err
	}
	// Within-state rates may exceed ½ (a deep fade); the stationary
	// marginal is what decoders fight and must stay below capacity.
	p01, _ := m.FlipRates()
	if p01 >= 0.5 {
		return fmt.Errorf("noise: %s: stationary flip rate %v outside [0, 0.5)", NameGilbertElliott, p01)
	}
	return nil
}

func (m GilbertElliott) FlipRates() (p01, p10 float64) {
	piBad := 0.0
	if d := m.PGoodToBad + m.PBadToGood; d > 0 {
		piBad = m.PGoodToBad / d
	}
	rate := (1-piBad)*m.PGood + piBad*m.PBad
	return rate, rate
}

// Noiseless is reachability-based, not stationary: chains start in
// Good, so the Good rate always matters, and the Bad rate matters
// whenever Bad is reachable — even if the stationary distribution
// forgets the transient state (e.g. an absorbing zero-rate Bad state
// reached only after a long noisy Good sojourn).
func (m GilbertElliott) Noiseless() bool {
	if m.PGood != 0 {
		return false
	}
	return m.PBad == 0 || m.PGoodToBad == 0
}

func (m GilbertElliott) Sampler(seed uint64, node int) Sampler {
	return &geSampler{m: m, r: baseStream(seed, node)}
}

// geSampler walks the Markov chain slot by slot. Every slot consumes
// exactly two uniforms — one flip draw, one transition draw — so
// consumption is position-determined and the batch and scalar paths
// agree by construction. Unlike the i.i.d. samplers there is no
// geometric skipping (state must advance through every slot); the batch
// path still writes word-at-a-time.
type geSampler struct {
	m   GilbertElliott
	r   *rng.Stream
	bad bool
	pos int // next unprocessed absolute slot
}

// step processes one slot: flip decision by the current state's rate,
// then the state transition.
func (s *geSampler) step() bool {
	p, q := s.m.PGood, s.m.PGoodToBad
	if s.bad {
		p, q = s.m.PBad, s.m.PBadToGood
	}
	flip := s.r.Float64() < p
	if s.r.Float64() < q {
		s.bad = !s.bad
	}
	s.pos++
	return flip
}

func (s *geSampler) ApplyInto(words []uint64, start, end int, protect []uint64) {
	for s.pos < start {
		s.step() // stale slots from earlier windows
	}
	var acc uint64
	wi := -1
	for s.pos < end {
		i := s.pos - start
		flip := s.step()
		if !flip {
			continue
		}
		if protect != nil && protect[i>>6]>>(uint(i)&63)&1 == 1 {
			continue
		}
		if w := i >> 6; w != wi {
			if wi >= 0 {
				words[wi] ^= acc
			}
			wi, acc = w, 0
		}
		acc |= 1 << (uint(i) & 63)
	}
	if wi >= 0 {
		words[wi] ^= acc
	}
}

func (s *geSampler) ApplyLaneInto(words []uint64, start, end, lane int, protect []uint64) {
	bit := uint64(1) << uint(lane)
	for s.pos < start {
		s.step() // stale slots from earlier windows
	}
	for s.pos < end {
		i := s.pos - start
		if !s.step() {
			continue
		}
		if protect != nil && protect[i]&bit != 0 {
			continue
		}
		words[i] ^= bit
	}
}

func (s *geSampler) FlipAt(t int, bit, protected bool) bool {
	if t < s.pos {
		return false // already-consumed slot, like the i.i.d. samplers
	}
	for s.pos < t {
		s.step()
	}
	flip := s.step()
	return flip && !protected
}
