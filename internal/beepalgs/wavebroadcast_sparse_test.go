package beepalgs

import (
	"bytes"
	"testing"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/wire"
)

// TestWaveBroadcastSparseEquivalence runs the wave protocol through every
// (EarlyStop × Sparse × workers) combination and pins all of them to the
// dense serial baseline: identical decoded outputs everywhere, and — for a
// fixed EarlyStop setting — identical round counts between the dense and
// sparse drivers.
func TestWaveBroadcastSparseEquivalence(t *testing.T) {
	msg := []byte{0xa5, 0x3c}
	const bits = 16
	graphs := map[string]*graph.Graph{
		"path":    graph.Path(40),
		"grid":    graph.Grid(9, 11),
		"cube":    graph.Hypercube(6),
		"bounded": graph.RandomBoundedDegree(180, 6, 0.04, rng.New(21)),
		"split":   graph.MustFromEdges(12, [][2]int{{0, 1}, {1, 2}, {3, 4}, {5, 6}, {6, 7}}),
	}
	for name, g := range graphs {
		baseline, baseRounds, err := RunWaveBroadcastOpts(g, 0, msg, bits, 0, 4, WaveOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for _, earlyStop := range []bool{false, true} {
			denseRounds := -1
			for _, sparse := range []bool{false, true} {
				for _, workers := range []int{0, 4, engine.AutoWorkers} {
					out, rounds, err := RunWaveBroadcastOpts(g, 0, msg, bits, 0, 4, WaveOptions{
						EarlyStop: earlyStop,
						Sparse:    sparse,
						Workers:   workers,
					})
					if err != nil {
						t.Fatal(err)
					}
					for v := range out {
						if !bytes.Equal(out[v], baseline[v]) {
							t.Fatalf("%s early=%v sparse=%v workers=%d: node %d decoded %x, baseline %x",
								name, earlyStop, sparse, workers, v, out[v], baseline[v])
						}
					}
					if denseRounds == -1 {
						denseRounds = rounds
					} else if rounds != denseRounds {
						t.Fatalf("%s early=%v sparse=%v workers=%d: rounds %d, dense twin took %d",
							name, earlyStop, sparse, workers, rounds, denseRounds)
					}
					if earlyStop && name == "path" && rounds >= baseRounds {
						t.Fatalf("%s: early stop did not shorten the run: %d vs %d",
							name, rounds, baseRounds)
					}
				}
			}
		}
	}
}

// TestWaveBroadcastEarlyStopDecodesEverything guards the early-stop cutoff
// itself: marker + 3·Bits + 1 is a node's final possible relay round, so
// stopping there must never lose a downstream bit — checked on a long path,
// where any premature stop starves the whole suffix.
func TestWaveBroadcastEarlyStopDecodesEverything(t *testing.T) {
	g := graph.Path(120)
	msg := []byte{0xff, 0x01, 0x80}
	const bits = 24
	out, rounds, err := RunWaveBroadcastOpts(g, 0, msg, bits, 0, 9, WaveOptions{EarlyStop: true, Sparse: true})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if !wire.Equal(out[v], msg, bits) {
			t.Fatalf("node %d decoded %x, want %x", v, out[v], msg)
		}
	}
	if want := WaveRounds(g.N(), bits, 119); rounds > want {
		t.Fatalf("early-stop run took %d rounds, exceeding the full budget %d", rounds, want)
	}
}
