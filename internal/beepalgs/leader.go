package beepalgs

import (
	"fmt"

	"repro/internal/algorithms/leader"
	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/wire"
)

// LeaderElection elects the maximum-ID node by bit-bidding over beep
// waves, the deterministic O(D log n) technique of Förster, Seidel &
// Wattenhofer (§1.2): the ID bits are auctioned from the most significant
// down; in each bit's phase, surviving candidates whose bit is 1 start a
// beep wave that floods the network within DBound rounds (every node
// relays the first beep it hears in the phase); if a wave was observed,
// candidates bidding 0 drop out, and every node records a 1 bit for the
// leader's ID. After all idBits phases, every node has reconstructed the
// maximum ID in its component.
//
// Noiseless model; DBound must upper-bound the diameter (n always works).
type LeaderElection struct {
	// DBound is the per-phase wave budget (default N).
	DBound int

	env       beep.Env
	idBits    int
	candidate bool
	leaderID  int
	heard     bool // wave observed in current phase
	relayAt   int  // round at which to relay the current phase's wave, -1 = none
	total     int
	finished  bool
}

var _ beep.Program = (*LeaderElection)(nil)

// Init implements beep.Program.
func (l *LeaderElection) Init(env beep.Env) {
	l.env = env
	if l.DBound <= 0 {
		l.DBound = env.N
	}
	l.idBits = wire.BitsFor(env.N)
	l.candidate = true
	l.relayAt = -1
	l.total = l.idBits * l.DBound
}

// phase returns the current bit phase (0 = most significant) and the
// position within it.
func (l *LeaderElection) phase(round int) (bitPhase, pos int) {
	return round / l.DBound, round % l.DBound
}

// bidsOne reports whether this candidate bids 1 in the given phase.
func (l *LeaderElection) bidsOne(bitPhase int) bool {
	bit := l.idBits - 1 - bitPhase
	return l.env.ID&(1<<uint(bit)) != 0
}

// Step implements beep.Program.
func (l *LeaderElection) Step(round int) beep.Action {
	bitPhase, pos := l.phase(round)
	if pos == 0 {
		// Phase start: reset wave state; initiators beep immediately.
		l.heard = false
		l.relayAt = -1
		if l.candidate && l.bidsOne(bitPhase) {
			l.heard = true
			return beep.Beep
		}
		return beep.Listen
	}
	if l.relayAt == round {
		return beep.Beep
	}
	return beep.Listen
}

// Hear implements beep.Program.
func (l *LeaderElection) Hear(round int, bit bool) {
	bitPhase, pos := l.phase(round)
	if bit && !l.heard {
		l.heard = true
		if pos+1 < l.DBound {
			l.relayAt = round + 1
		}
	}
	if pos == l.DBound-1 { // phase end: settle the bit
		idBit := l.idBits - 1 - bitPhase
		if l.heard {
			l.leaderID |= 1 << uint(idBit)
			if l.candidate && !l.bidsOne(bitPhase) {
				l.candidate = false
			}
		} else if l.candidate && l.bidsOne(bitPhase) {
			// Impossible in a noiseless run (we beeped ourselves), kept
			// for defensive symmetry.
			l.candidate = false
		}
	}
	// Finish only after the final phase's bit has settled (Done must not
	// flip between Step and Hear, or the engine would withhold the very
	// Hear that settles the last bit).
	if round == l.total-1 {
		l.finished = true
	}
}

// Done implements beep.Program.
func (l *LeaderElection) Done() bool { return l.finished }

// Output returns a leader.Result (shared with the message-passing
// election for verifier reuse).
func (l *LeaderElection) Output() any {
	return leader.Result{Leader: l.leaderID, IsLeader: l.leaderID == l.env.ID}
}

// NewLeaderElection returns per-node programs with the given diameter
// bound (0 = use n).
func NewLeaderElection(n, dBound int) []beep.Program {
	progs := make([]beep.Program, n)
	for v := range progs {
		progs[v] = &LeaderElection{DBound: dBound}
	}
	return progs
}

// LeaderRounds returns the exact running time: idBits · DBound.
func LeaderRounds(n, dBound int) int {
	if dBound <= 0 {
		dBound = n
	}
	return wire.BitsFor(n) * dBound
}

// RunLeaderElection executes the protocol on a noiseless network.
func RunLeaderElection(g *graph.Graph, dBound int, seed uint64) ([]leader.Result, int, error) {
	nw, err := beep.NewNetwork(g, beep.Params{Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	progs := NewLeaderElection(g.N(), dBound)
	res, err := nw.Run(progs, LeaderRounds(g.N(), dBound))
	if err != nil {
		return nil, 0, err
	}
	if !res.AllDone {
		return nil, res.Rounds, fmt.Errorf("beepalgs: election did not finish")
	}
	out := make([]leader.Result, g.N())
	for v, o := range res.Outputs {
		out[v] = o.(leader.Result)
	}
	return out, res.Rounds, nil
}
