// Package beepalgs implements algorithms written natively for the
// beeping model — no message passing, only beeps — in the style of the
// prior work the paper's §1.2 and §7 discuss: Afek et al.'s maximal
// independent set and beep-wave leader election (Ghaffari–Haeupler,
// Förster et al.).
//
// Their point in this reproduction is the paper's closing observation
// (§7): the beeping complexity landscape differs from CONGEST's. MIS is
// solvable in log^{O(1)} n beep rounds natively — *independent of Δ* —
// while the generic simulation necessarily pays Θ(Δ log n) per simulated
// round, and for maximal matching the Ω(Δ log n) lower bound (Theorem 22)
// shows no native shortcut can exist. Experiment T11 measures the gap.
package beepalgs

import (
	"fmt"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/wire"
)

// MISStatus is a node's decision state.
type MISStatus int

const (
	// MISUndecided nodes are still competing.
	MISUndecided MISStatus = iota
	// MISIn nodes joined the independent set.
	MISIn
	// MISOut nodes have a neighbor in the set.
	MISOut
)

// MIS is a noiseless-beeping maximal independent set protocol with
// adaptive candidacy probabilities (the Afek et al. flavor):
//
// Each phase has 1 + VerifyRounds + 1 rounds:
//
//	candidacy   — each undecided node privately becomes a candidate with
//	              its current probability p_v (no communication);
//	verification — for VerifyRounds rounds, each candidate beeps or
//	              listens by a fresh coin each round; a candidate that
//	              hears a beep while listening has an adjacent competitor
//	              and aborts (two adjacent candidates both survive with
//	              probability 2^{-VerifyRounds});
//	join        — surviving candidates beep and enter the set; undecided
//	              listeners that hear the join beep leave the competition.
//
// A candidate that aborted halves p_v (down to MinProb), so dense
// neighborhoods thin out their candidacy rate geometrically — this is
// what makes the running time polylogarithmic independent of Δ, unlike
// a fixed Luby probability which would need degree knowledge.
//
// The protocol assumes the noiseless model; under noise, wrap a
// message-passing MIS in the core simulator instead (that is the paper's
// whole point).
type MIS struct {
	// VerifyRounds is the conflict-detection window (default
	// 2·log₂n + 6, making surviving conflicts a low-probability event).
	VerifyRounds int
	// MinProb floors the adaptive candidacy probability (default 1/n²).
	MinProb float64

	env       beep.Env
	status    MISStatus
	prob      float64
	candidate bool
	conflict  bool
	phaseLen  int
	// beeped records whether the last Step returned Beep, letting Hear
	// distinguish the node's own energy (the model's "receives 1"
	// convention) from a competitor's beep.
	beeped bool
}

var _ beep.Program = (*MIS)(nil)

// Init implements beep.Program.
func (m *MIS) Init(env beep.Env) {
	m.env = env
	if m.VerifyRounds == 0 {
		m.VerifyRounds = 2*wire.BitsFor(env.N) + 6
	}
	if m.MinProb == 0 {
		m.MinProb = 1 / float64(env.N*env.N+1)
	}
	m.status = MISUndecided
	m.prob = 0.5
	m.phaseLen = 1 + m.VerifyRounds + 1
}

// phasePos returns the position within the current phase.
func (m *MIS) phasePos(round int) int { return round % m.phaseLen }

// Step implements beep.Program.
func (m *MIS) Step(round int) beep.Action {
	pos := m.phasePos(round)
	m.beeped = false
	switch {
	case pos == 0:
		// Candidacy is a private coin; the round itself is silent (it
		// exists so that Hear can close the previous phase cleanly).
		m.candidate = m.env.Rng.Bool(m.prob)
		m.conflict = false
	case pos <= m.VerifyRounds:
		if m.candidate && !m.conflict && m.env.Rng.Bool(0.5) {
			m.beeped = true
		}
	default: // join round
		if m.candidate && !m.conflict {
			m.beeped = true
		}
	}
	if m.beeped {
		return beep.Beep
	}
	return beep.Listen
}

// Hear implements beep.Program.
func (m *MIS) Hear(round int, bit bool) {
	pos := m.phasePos(round)
	switch {
	case pos == 0:
		// Quiet round; nothing to learn.
	case pos <= m.VerifyRounds:
		// A beeping node receives its own beep (model convention), so
		// energy is evidence of a competitor only in rounds we listened.
		if m.candidate && !m.conflict && bit && !m.beeped {
			m.conflict = true
			m.prob /= 2
			if m.prob < m.MinProb {
				m.prob = m.MinProb
			}
		}
	default: // join round
		if m.candidate && !m.conflict {
			m.status = MISIn
			return
		}
		if bit && !m.beeped {
			m.status = MISOut
		}
	}
}

// Done implements beep.Program.
func (m *MIS) Done() bool { return m.status != MISUndecided }

// Output returns true iff the node joined the MIS.
func (m *MIS) Output() any { return m.status == MISIn }

// NewMIS returns per-node programs for an n-node network.
func NewMIS(n int) []beep.Program {
	progs := make([]beep.Program, n)
	for v := range progs {
		progs[v] = &MIS{}
	}
	return progs
}

// MISMaxRounds returns a generous budget: O(log n) phases of O(log n)
// rounds each, with slack.
func MISMaxRounds(n int) int {
	logn := wire.BitsFor(n)
	phaseLen := 1 + (2*logn + 6) + 1
	return phaseLen * (12*logn + 24)
}

// RunMIS executes the native protocol on a noiseless network and returns
// the membership vector.
func RunMIS(g *graph.Graph, seed uint64) ([]bool, int, error) {
	nw, err := beep.NewNetwork(g, beep.Params{Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	progs := NewMIS(g.N())
	res, err := nw.Run(progs, MISMaxRounds(g.N()))
	if err != nil {
		return nil, 0, err
	}
	if !res.AllDone {
		return nil, res.Rounds, fmt.Errorf("beepalgs: MIS did not stabilize in %d rounds", MISMaxRounds(g.N()))
	}
	out := make([]bool, g.N())
	for v, o := range res.Outputs {
		out[v] = o.(bool)
	}
	return out, res.Rounds, nil
}
