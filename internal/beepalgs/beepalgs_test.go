package beepalgs

import (
	"testing"

	"repro/internal/algorithms/leader"
	"repro/internal/algorithms/mis"
	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/wire"
)

func TestNativeMISOnFixedGraphs(t *testing.T) {
	tests := []struct {
		name string
		g    *graph.Graph
	}{
		{name: "single edge", g: graph.Path(2)},
		{name: "path", g: graph.Path(12)},
		{name: "cycle", g: graph.Cycle(9)},
		{name: "star", g: graph.Star(10)},
		{name: "complete", g: graph.Complete(12)},
		{name: "grid", g: graph.Grid(4, 5)},
		{name: "edgeless", g: graph.MustFromEdges(5, nil)},
		{name: "random", g: graph.RandomBoundedDegree(60, 6, 0.1, rng.New(1))},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			inSet, rounds, err := RunMIS(tt.g, 7)
			if err != nil {
				t.Fatal(err)
			}
			if err := mis.Verify(tt.g, inSet); err != nil {
				t.Fatalf("invalid MIS after %d rounds: %v", rounds, err)
			}
		})
	}
}

func TestNativeMISRoundsIndependentOfDegree(t *testing.T) {
	// The §7 gap: native beeping MIS cost must not grow linearly in Δ.
	var base int
	for _, delta := range []int{4, 16} {
		g, err := graph.RandomRegular(64, delta, rng.New(uint64(delta)))
		if err != nil {
			t.Fatal(err)
		}
		_, rounds, err := RunMIS(g, 9)
		if err != nil {
			t.Fatal(err)
		}
		if delta == 4 {
			base = rounds
			continue
		}
		// Δ grew 4×; rounds must grow far less than 4× (they typically
		// shrink or stay flat).
		if rounds > 3*base {
			t.Errorf("rounds grew from %d (Δ=4) to %d (Δ=16); native MIS should be ≈Δ-independent", base, rounds)
		}
	}
}

func TestNativeMISManySeeds(t *testing.T) {
	g := graph.RandomBoundedDegree(40, 5, 0.12, rng.New(3))
	for seed := uint64(0); seed < 10; seed++ {
		inSet, _, err := RunMIS(g, seed)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := mis.Verify(g, inSet); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestNativeMISCompleteGraphSingleton(t *testing.T) {
	g := graph.Complete(16)
	inSet, _, err := RunMIS(g, 11)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, in := range inSet {
		if in {
			count++
		}
	}
	if count != 1 {
		t.Errorf("MIS of K16 has %d members, want 1", count)
	}
}

func TestNativeMISBudgetFailureDetected(t *testing.T) {
	// Failure injection: an absurdly small budget must be reported, not
	// silently produce a partial output.
	g := graph.Complete(8)
	nw, err := beep.NewNetwork(g, beep.Params{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := nw.Run(NewMIS(g.N()), 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllDone {
		t.Error("3 rounds cannot complete an MIS phase; AllDone must be false")
	}
}

func TestLeaderElectionFixedGraphs(t *testing.T) {
	tests := []struct {
		name   string
		g      *graph.Graph
		dBound int
	}{
		{name: "path", g: graph.Path(9)},
		{name: "cycle", g: graph.Cycle(10)},
		{name: "star", g: graph.Star(7)},
		{name: "grid", g: graph.Grid(3, 4)},
		{name: "tight diameter bound", g: graph.Path(8), dBound: 8},
		{name: "two components", g: graph.MustFromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}})},
		{name: "singletons", g: graph.MustFromEdges(3, nil)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, rounds, err := RunLeaderElection(tt.g, tt.dBound, 5)
			if err != nil {
				t.Fatal(err)
			}
			if want := LeaderRounds(tt.g.N(), tt.dBound); rounds != want {
				t.Errorf("rounds = %d, want exactly %d", rounds, want)
			}
			if err := leader.Verify(tt.g, out); err != nil {
				t.Fatalf("invalid election: %v", err)
			}
		})
	}
}

func TestLeaderElectionDeterministic(t *testing.T) {
	// The protocol is deterministic given the graph: different channel
	// seeds must give identical results in the noiseless model.
	g := graph.Cycle(12)
	a, _, err := RunLeaderElection(g, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := RunLeaderElection(g, 0, 999)
	if err != nil {
		t.Fatal(err)
	}
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("node %d differs across channel seeds: %+v vs %+v", v, a[v], b[v])
		}
	}
}

func TestLeaderElectionRoundsFormula(t *testing.T) {
	// O(D log n): with a tight diameter bound the cost is D·log n, far
	// below the n·log n of the default bound on low-diameter graphs.
	g := graph.Grid(4, 8) // n = 32, diameter 10
	d := g.Diameter() + 1
	out, rounds, err := RunLeaderElection(g, d, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.Verify(g, out); err != nil {
		t.Fatal(err)
	}
	if rounds != LeaderRounds(g.N(), d) {
		t.Errorf("rounds = %d, want %d", rounds, LeaderRounds(g.N(), d))
	}
	if rounds >= LeaderRounds(g.N(), 0) {
		t.Errorf("tight bound (%d rounds) not cheaper than default (%d)", rounds, LeaderRounds(g.N(), 0))
	}
}

func TestWaveBroadcastDeliversMessage(t *testing.T) {
	msg := []byte{0xa5, 0x3c} // 16 bits
	tests := []struct {
		name   string
		g      *graph.Graph
		source int
	}{
		{name: "path", g: graph.Path(10), source: 0},
		{name: "path from middle", g: graph.Path(11), source: 5},
		{name: "cycle", g: graph.Cycle(12), source: 3},
		{name: "grid", g: graph.Grid(4, 5), source: 7},
		{name: "star", g: graph.Star(9), source: 0},
		{name: "complete", g: graph.Complete(8), source: 2},
		{name: "hypercube", g: graph.Hypercube(4), source: 9},
		{name: "random", g: graph.RandomGeometricGrid(36, 8, rng.New(2)), source: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			out, rounds, err := RunWaveBroadcast(tt.g, tt.source, msg, 16, 0, 4)
			if err != nil {
				t.Fatal(err)
			}
			if want := WaveRounds(tt.g.N(), 16, 0); rounds != want {
				t.Errorf("rounds = %d, want %d", rounds, want)
			}
			for v := 0; v < tt.g.N(); v++ {
				if !wire.Equal(out[v], msg, 16) {
					t.Errorf("node %d decoded %x, want %x", v, out[v], msg)
				}
			}
		})
	}
}

func TestWaveBroadcastAllZeroAndAllOneMessages(t *testing.T) {
	g := graph.Grid(3, 5)
	for _, msg := range [][]byte{{0x00}, {0xff}} {
		out, _, err := RunWaveBroadcast(g, 0, msg, 8, 0, 5)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < g.N(); v++ {
			if !wire.Equal(out[v], msg, 8) {
				t.Errorf("msg %x: node %d decoded %x", msg, v, out[v])
			}
		}
	}
}

func TestWaveBroadcastTightDiameterBound(t *testing.T) {
	// With a tight diameter bound, the O(D + b) cost beats per-bit
	// flooding's Θ(D·b) decisively.
	g := graph.Grid(5, 5)
	d := g.Diameter() + 1
	const bits = 64
	msg := make([]byte, 8)
	for i := range msg {
		msg[i] = byte(0x5a ^ i)
	}
	out, rounds, err := RunWaveBroadcast(g, 0, msg, bits, d, 6)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if !wire.Equal(out[v], msg, bits) {
			t.Fatalf("node %d decoded %x", v, out[v])
		}
	}
	perBitFlood := bits * (g.Diameter() + 1) // Θ(D·b) naive alternative
	if rounds >= perBitFlood {
		t.Errorf("wave broadcast used %d rounds, not better than per-bit flooding %d", rounds, perBitFlood)
	}
}

func TestWaveBroadcastDisconnected(t *testing.T) {
	g := graph.MustFromEdges(4, [][2]int{{0, 1}})
	out, _, err := RunWaveBroadcast(g, 0, []byte{0x7}, 4, 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !wire.Equal(out[1], []byte{0x7}, 4) {
		t.Errorf("connected node decoded %x", out[1])
	}
	if out[2] != nil || out[3] != nil {
		t.Errorf("disconnected nodes decoded %x, %x; want nil", out[2], out[3])
	}
}

func TestWaveBroadcastRejectsZeroBits(t *testing.T) {
	if _, _, err := RunWaveBroadcast(graph.Path(2), 0, nil, 0, 0, 1); err == nil {
		t.Error("bits=0 accepted")
	}
}

func TestNoisyWaveBroadcastDeliversUnderNoise(t *testing.T) {
	msg := []byte{0xd2, 0x4b}
	tests := []struct {
		name string
		g    *graph.Graph
		eps  float64
	}{
		{name: "path eps0.1", g: graph.Path(8), eps: 0.1},
		{name: "grid eps0.15", g: graph.Grid(4, 4), eps: 0.15},
		{name: "cycle eps0.1", g: graph.Cycle(10), eps: 0.1},
		{name: "geometric eps0.1", g: graph.RandomGeometricGrid(25, 8, rng.New(4)), eps: 0.1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			d := tt.g.Diameter() + 1
			out, rounds, err := RunNoisyWaveBroadcast(tt.g, 0, msg, 16, d, 32, tt.eps, 8)
			if err != nil {
				t.Fatal(err)
			}
			if want := NoisyWaveRounds(tt.g.N(), 16, d, 32); rounds != want {
				t.Errorf("rounds = %d, want %d", rounds, want)
			}
			for v := 0; v < tt.g.N(); v++ {
				if !wire.Equal(out[v], msg, 16) {
					t.Errorf("node %d decoded %x, want %x", v, out[v], msg)
				}
			}
		})
	}
}

func TestNoisyWaveBroadcastMatchesNoiselessSemantics(t *testing.T) {
	// At ε = 0 the frame-lifted protocol must deliver exactly like the
	// round-level one (it is the same schedule, stretched).
	g := graph.Grid(3, 4)
	msg := []byte{0x99}
	out, _, err := RunNoisyWaveBroadcast(g, 5, msg, 8, 0, 8, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if !wire.Equal(out[v], msg, 8) {
			t.Errorf("node %d decoded %x", v, out[v])
		}
	}
}

func TestNoisyWaveBroadcastNoPhantomUnderPureNoise(t *testing.T) {
	// Without a source wave, noise alone must not hallucinate a marker
	// (w.h.p. at these sizes): all non-source nodes output nil.
	g := graph.Path(6)
	// Source with an all-zero message still sends the marker; instead make
	// the "source" disconnected from the rest.
	h := graph.MustFromEdges(6, [][2]int{{1, 2}, {2, 3}, {3, 4}, {4, 5}})
	out, _, err := RunNoisyWaveBroadcast(h, 0, []byte{0xff}, 8, 6, 32, 0.15, 12)
	if err != nil {
		t.Fatal(err)
	}
	_ = g
	for v := 1; v < h.N(); v++ {
		if out[v] != nil {
			t.Errorf("node %d hallucinated a message %x from pure noise", v, out[v])
		}
	}
}

func TestNoisyWaveBroadcastRejectsZeroBits(t *testing.T) {
	if _, _, err := RunNoisyWaveBroadcast(graph.Path(2), 0, nil, 0, 0, 8, 0.1, 1); err == nil {
		t.Error("bits=0 accepted")
	}
}
