package beepalgs

import (
	"fmt"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/wire"
)

// NoisyWaveBroadcast lifts WaveBroadcast from rounds to frames so it
// survives channel noise: each logical round of the beep-wave schedule
// becomes a frame of FrameLen physical rounds; a relaying node beeps
// through its whole frame, and a listener detects a wave in a frame iff it
// hears at least Threshold beeps there (majority voting, the same
// repetition defense RobustFlood and Algorithm 1's codes use).
//
// The frame arithmetic is identical to the noiseless protocol: marker wave
// at frame 0, bit i's wave at frame 3(i+1), relays one frame after
// detection with a two-frame refractory window, decode by frame offset
// from the marker. Total cost is FrameLen·(3(Bits+1) + D) rounds —
// O((D + b)·log) with the log absorbed by the frame length, mirroring how
// the paper absorbs noise into constant-factor redundancy.
//
// This is an extension beyond the paper's toolbox (it only states the
// noiseless beep-wave bound); it demonstrates that the §1.2 primitives
// compose with the same noise defenses as the main construction.
type NoisyWaveBroadcast struct {
	// Source marks the broadcaster; Message/Bits its payload.
	Source  bool
	Message []byte
	// Bits is the message width (required, > 0).
	Bits int
	// DBound upper-bounds the diameter (default N).
	DBound int
	// FrameLen is the physical rounds per logical frame (default 24).
	FrameLen int
	// Threshold is the per-frame detection level (default FrameLen/2).
	Threshold int

	env          beep.Env
	totalFrames  int
	marker       int // frame the marker was detected in (−1 until then)
	lastRelay    int // frame we last relayed in
	relayFrame   int // frame scheduled for relaying, −1 = none
	heardInFrame int
	received     []byte
	finished     bool
}

var _ beep.Program = (*NoisyWaveBroadcast)(nil)

// NoisyWaveRounds returns the exact running time in physical rounds.
func NoisyWaveRounds(n, bits, dBound, frameLen int) int {
	if dBound <= 0 {
		dBound = n
	}
	if frameLen <= 0 {
		frameLen = 24
	}
	return frameLen * (3*(bits+1) + dBound)
}

// Init implements beep.Program.
func (nwb *NoisyWaveBroadcast) Init(env beep.Env) {
	nwb.env = env
	if nwb.DBound <= 0 {
		nwb.DBound = env.N
	}
	if nwb.FrameLen <= 0 {
		nwb.FrameLen = 24
	}
	if nwb.Threshold <= 0 {
		nwb.Threshold = nwb.FrameLen / 2
	}
	nwb.totalFrames = 3*(nwb.Bits+1) + nwb.DBound
	nwb.marker = -1
	nwb.lastRelay = -3
	nwb.relayFrame = -1
	nwb.received = make([]byte, (nwb.Bits+7)/8)
	if nwb.Source {
		nwb.marker = 0
		copy(nwb.received, nwb.Message)
	}
}

// beepsInFrame reports whether the node transmits throughout this frame.
func (nwb *NoisyWaveBroadcast) beepsInFrame(frame int) bool {
	if nwb.Source {
		if frame == 0 {
			return true // marker
		}
		if frame%3 == 0 {
			i := frame/3 - 1
			return i < nwb.Bits && wire.Bit(nwb.Message, i)
		}
		return false
	}
	return nwb.relayFrame == frame
}

// Step implements beep.Program.
func (nwb *NoisyWaveBroadcast) Step(round int) beep.Action {
	if nwb.beepsInFrame(round / nwb.FrameLen) {
		return beep.Beep
	}
	return beep.Listen
}

// Hear implements beep.Program.
func (nwb *NoisyWaveBroadcast) Hear(round int, bit bool) {
	frame := round / nwb.FrameLen
	beeping := nwb.beepsInFrame(frame)
	if bit && !beeping {
		nwb.heardInFrame++
	}
	if (round+1)%nwb.FrameLen != 0 {
		return
	}
	// Frame boundary: settle detection, then reset the counter.
	detected := nwb.heardInFrame >= nwb.Threshold
	nwb.heardInFrame = 0
	if beeping && !nwb.Source {
		nwb.lastRelay = frame
		nwb.relayFrame = -1
	}
	if detected && !nwb.Source && frame >= nwb.lastRelay+2 {
		if nwb.marker == -1 {
			nwb.marker = frame
		} else {
			offset := frame - nwb.marker
			if offset%3 == 0 {
				i := offset/3 - 1
				if i >= 0 && i < nwb.Bits {
					wire.SetBit(nwb.received, i, true)
				}
			}
		}
		if frame+1 < nwb.totalFrames {
			nwb.relayFrame = frame + 1
		}
	}
	if frame == nwb.totalFrames-1 {
		nwb.finished = true
	}
}

// Done implements beep.Program.
func (nwb *NoisyWaveBroadcast) Done() bool { return nwb.finished }

// Output returns the decoded message, or nil if the marker never arrived.
func (nwb *NoisyWaveBroadcast) Output() any {
	if nwb.marker == -1 {
		return []byte(nil)
	}
	return nwb.received
}

// NewNoisyWaveBroadcast returns per-node programs.
func NewNoisyWaveBroadcast(n, source int, msg []byte, bits, dBound, frameLen int) []beep.Program {
	progs := make([]beep.Program, n)
	for v := range progs {
		progs[v] = &NoisyWaveBroadcast{
			Source:   v == source,
			Message:  msg,
			Bits:     bits,
			DBound:   dBound,
			FrameLen: frameLen,
		}
	}
	return progs
}

// RunNoisyWaveBroadcast executes the protocol on a channel with the given
// noise rate and returns each node's decoded message.
func RunNoisyWaveBroadcast(g *graph.Graph, source int, msg []byte, bits, dBound, frameLen int, eps float64, seed uint64) ([][]byte, int, error) {
	if bits <= 0 {
		return nil, 0, fmt.Errorf("beepalgs: noisy wave broadcast needs bits > 0")
	}
	nw, err := beep.NewNetwork(g, beep.Params{Epsilon: eps, Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	progs := NewNoisyWaveBroadcast(g.N(), source, msg, bits, dBound, frameLen)
	res, err := nw.Run(progs, NoisyWaveRounds(g.N(), bits, dBound, frameLen))
	if err != nil {
		return nil, 0, err
	}
	out := make([][]byte, g.N())
	for v, o := range res.Outputs {
		out[v] = o.([]byte)
	}
	return out, res.Rounds, nil
}
