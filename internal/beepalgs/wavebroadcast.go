package beepalgs

import (
	"fmt"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/wire"
)

// WaveBroadcast is the "beep waves" single-source broadcast of Ghaffari &
// Haeupler, formalized by Czumaj & Davies (§1.2): a b-bit message in
// O(D + b) noiseless beep rounds.
//
// The source launches a marker wave at round 0 and then one wave per
// 1-bit, at round 3(i+1) for message bit i. Waves propagate one hop per
// round: every non-source node relays the first beep of each wave and then
// stays refractory for two rounds, which makes colliding wavefronts
// annihilate (any late arrival of the same wave falls inside some
// neighbor's refractory window). A node at BFS distance d hears the marker
// at round d−1, which calibrates its local clock: message bit i is 1 iff
// it hears a beep exactly 3(i+1) rounds after the marker.
//
// Every node therefore decodes the message after 3(Bits+1) + D rounds —
// the O(D + b) bound — versus Θ(D·b) for naive per-bit flooding.
type WaveBroadcast struct {
	// Source marks the broadcaster; Message/Bits are its payload.
	Source  bool
	Message []byte
	// Bits is the message width (required, > 0).
	Bits int
	// DBound upper-bounds the diameter (default N).
	DBound int

	env       beep.Env
	total     int
	marker    int // round the marker was heard (−1 until then)
	lastRelay int
	relayAt   int
	received  []byte
	finished  bool
}

var _ beep.Program = (*WaveBroadcast)(nil)

// WaveRounds returns the exact running time 3(bits+1) + dBound.
func WaveRounds(n, bits, dBound int) int {
	if dBound <= 0 {
		dBound = n
	}
	return 3*(bits+1) + dBound
}

// Init implements beep.Program.
func (wb *WaveBroadcast) Init(env beep.Env) {
	wb.env = env
	if wb.DBound <= 0 {
		wb.DBound = env.N
	}
	wb.total = WaveRounds(env.N, wb.Bits, wb.DBound)
	wb.marker = -1
	wb.lastRelay = -3
	wb.relayAt = -1
	wb.received = make([]byte, (wb.Bits+7)/8)
	if wb.Source {
		wb.marker = 0
		copy(wb.received, wb.Message)
	}
}

// Step implements beep.Program.
func (wb *WaveBroadcast) Step(round int) beep.Action {
	if wb.Source {
		if round == 0 {
			return beep.Beep // marker wave
		}
		if round%3 == 0 {
			i := round/3 - 1
			if i < wb.Bits && wire.Bit(wb.Message, i) {
				return beep.Beep
			}
		}
		return beep.Listen
	}
	if wb.relayAt == round {
		wb.lastRelay = round
		wb.relayAt = -1
		return beep.Beep
	}
	return beep.Listen
}

// Hear implements beep.Program.
func (wb *WaveBroadcast) Hear(round int, bit bool) {
	defer func() {
		if round == wb.total-1 {
			wb.finished = true
		}
	}()
	if wb.Source || !bit || round == wb.lastRelay {
		return
	}
	// Refractory: ignore echoes within two rounds of our own relay.
	if round < wb.lastRelay+2 {
		return
	}
	if wb.marker == -1 {
		wb.marker = round
	} else {
		offset := round - wb.marker
		if offset%3 == 0 {
			i := offset/3 - 1
			if i >= 0 && i < wb.Bits {
				wire.SetBit(wb.received, i, true)
			}
		}
	}
	wb.relayAt = round + 1
}

// Done implements beep.Program.
func (wb *WaveBroadcast) Done() bool { return wb.finished }

// Output returns the decoded message, or nil if the marker never arrived
// (disconnected node).
func (wb *WaveBroadcast) Output() any {
	if wb.marker == -1 {
		return []byte(nil)
	}
	return wb.received
}

// NewWaveBroadcast returns per-node programs: node source broadcasts the
// given message, everyone else listens and relays.
func NewWaveBroadcast(n, source int, msg []byte, bits, dBound int) []beep.Program {
	progs := make([]beep.Program, n)
	for v := range progs {
		progs[v] = &WaveBroadcast{
			Source:  v == source,
			Message: msg,
			Bits:    bits,
			DBound:  dBound,
		}
	}
	return progs
}

// RunWaveBroadcast executes the protocol on a noiseless network and
// returns each node's decoded message.
func RunWaveBroadcast(g *graph.Graph, source int, msg []byte, bits, dBound int, seed uint64) ([][]byte, int, error) {
	if bits <= 0 {
		return nil, 0, fmt.Errorf("beepalgs: wave broadcast needs bits > 0")
	}
	nw, err := beep.NewNetwork(g, beep.Params{Seed: seed})
	if err != nil {
		return nil, 0, err
	}
	progs := NewWaveBroadcast(g.N(), source, msg, bits, dBound)
	res, err := nw.Run(progs, WaveRounds(g.N(), bits, dBound))
	if err != nil {
		return nil, 0, err
	}
	out := make([][]byte, g.N())
	for v, o := range res.Outputs {
		out[v] = o.([]byte)
	}
	return out, res.Rounds, nil
}
