package beepalgs

import (
	"fmt"

	"repro/internal/beep"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/wire"
)

// WaveBroadcast is the "beep waves" single-source broadcast of Ghaffari &
// Haeupler, formalized by Czumaj & Davies (§1.2): a b-bit message in
// O(D + b) noiseless beep rounds.
//
// The source launches a marker wave at round 0 and then one wave per
// 1-bit, at round 3(i+1) for message bit i. Waves propagate one hop per
// round: every non-source node relays the first beep of each wave and then
// stays refractory for two rounds, which makes colliding wavefronts
// annihilate (any late arrival of the same wave falls inside some
// neighbor's refractory window). A node at BFS distance d hears the marker
// at round d−1, which calibrates its local clock: message bit i is 1 iff
// it hears a beep exactly 3(i+1) rounds after the marker.
//
// Every node therefore decodes the message after 3(Bits+1) + D rounds —
// the O(D + b) bound — versus Θ(D·b) for naive per-bit flooding.
type WaveBroadcast struct {
	// Source marks the broadcaster; Message/Bits are its payload.
	Source  bool
	Message []byte
	// Bits is the message width (required, > 0).
	Bits int
	// DBound upper-bounds the diameter (default N).
	DBound int
	// EarlyStop lets a node finish as soon as it can neither learn nor
	// relay anything more: marker + 3·Bits + 1 rounds after it heard the
	// marker (the round of its final possible relay), instead of waiting
	// out the global 3(Bits+1)+DBound budget. Decoded outputs are
	// unchanged — every wave a neighbor needs is relayed before the node
	// stops — but runs on low-diameter graphs finish in O(d + Bits)
	// local rounds. Off by default, preserving historical round counts.
	EarlyStop bool

	env       beep.Env
	total     int
	marker    int // round the marker was heard (−1 until then)
	lastRelay int
	relayAt   int
	received  []byte
	finished  bool
}

var (
	_ beep.Program      = (*WaveBroadcast)(nil)
	_ beep.QuietProgram = (*WaveBroadcast)(nil)
)

// WaveRounds returns the exact running time 3(bits+1) + dBound.
func WaveRounds(n, bits, dBound int) int {
	if dBound <= 0 {
		dBound = n
	}
	return 3*(bits+1) + dBound
}

// Init implements beep.Program.
func (wb *WaveBroadcast) Init(env beep.Env) {
	wb.env = env
	if wb.DBound <= 0 {
		wb.DBound = env.N
	}
	wb.total = WaveRounds(env.N, wb.Bits, wb.DBound)
	wb.marker = -1
	wb.lastRelay = -3
	wb.relayAt = -1
	wb.received = make([]byte, (wb.Bits+7)/8)
	if wb.Source {
		wb.marker = 0
		copy(wb.received, wb.Message)
	}
}

// Step implements beep.Program.
func (wb *WaveBroadcast) Step(round int) beep.Action {
	if wb.Source {
		if round == 0 {
			return beep.Beep // marker wave
		}
		if round%3 == 0 {
			i := round/3 - 1
			if i < wb.Bits && wire.Bit(wb.Message, i) {
				return beep.Beep
			}
		}
		return beep.Listen
	}
	if wb.relayAt == round {
		wb.lastRelay = round
		wb.relayAt = -1
		return beep.Beep
	}
	return beep.Listen
}

// Hear implements beep.Program.
func (wb *WaveBroadcast) Hear(round int, bit bool) {
	defer func() {
		if round == wb.total-1 {
			wb.finished = true
		} else if wb.EarlyStop && wb.marker >= 0 && round >= wb.marker+3*wb.Bits+1 {
			wb.finished = true
		}
	}()
	if wb.Source || !bit || round == wb.lastRelay {
		return
	}
	// Refractory: ignore echoes within two rounds of our own relay.
	if round < wb.lastRelay+2 {
		return
	}
	if wb.marker == -1 {
		wb.marker = round
	} else {
		offset := round - wb.marker
		if offset%3 == 0 {
			i := offset/3 - 1
			if i >= 0 && i < wb.Bits {
				wire.SetBit(wb.received, i, true)
			}
		}
	}
	wb.relayAt = round + 1
}

// Done implements beep.Program.
func (wb *WaveBroadcast) Done() bool { return wb.finished }

// NextWake implements beep.QuietProgram, the wave protocol's sparse
// schedule: between the rounds returned here the node provably listens in
// silence-tolerant quiescence, so the sparse driver skips it entirely.
// Incoming beeps still drive the node outside this schedule (that is the
// driver's job); NextWake only declares when the node acts on its own —
// the source's wave launches, a pending relay, and the finish round.
func (wb *WaveBroadcast) NextWake(round int) int {
	if wb.finished {
		return beep.NoWake
	}
	// The round whose Hear sets finished: the global budget's last round,
	// or the early-stop point once the marker has calibrated the clock.
	doneRound := wb.total - 1
	if wb.EarlyStop && wb.marker >= 0 {
		if d := wb.marker + 3*wb.Bits + 1; d < doneRound {
			doneRound = d
		}
	}
	next := doneRound
	if wb.Source {
		// Wave launches at rounds 0, 3, ..., 3·Bits.
		if round < 0 {
			next = 0
		} else if round < 3*wb.Bits {
			next = (round/3 + 1) * 3
		}
	} else if wb.relayAt > round && wb.relayAt < next {
		next = wb.relayAt
	}
	if next <= round {
		next = round + 1
	}
	return next
}

// Output returns the decoded message, or nil if the marker never arrived
// (disconnected node).
func (wb *WaveBroadcast) Output() any {
	if wb.marker == -1 {
		return []byte(nil)
	}
	return wb.received
}

// NewWaveBroadcast returns per-node programs: node source broadcasts the
// given message, everyone else listens and relays.
func NewWaveBroadcast(n, source int, msg []byte, bits, dBound int) []beep.Program {
	progs := make([]beep.Program, n)
	for v := range progs {
		progs[v] = &WaveBroadcast{
			Source:  v == source,
			Message: msg,
			Bits:    bits,
			DBound:  dBound,
		}
	}
	return progs
}

// RunWaveBroadcast executes the protocol on a noiseless network and
// returns each node's decoded message.
func RunWaveBroadcast(g *graph.Graph, source int, msg []byte, bits, dBound int, seed uint64) ([][]byte, int, error) {
	if dBound <= 0 {
		dBound = g.N() // the historical loose default, kept for round-count stability
	}
	return RunWaveBroadcastOpts(g, source, msg, bits, dBound, seed, WaveOptions{})
}

// WaveOptions configures RunWaveBroadcastOpts beyond the historical
// defaults (all-zero = exactly RunWaveBroadcast's behavior).
type WaveOptions struct {
	// EarlyStop enables per-node early termination (WaveBroadcast.EarlyStop).
	EarlyStop bool
	// Sparse drives the run through the network's sparse active-set
	// executor instead of the dense per-round scan. Outputs are identical;
	// per-round cost tracks the wave front instead of n.
	Sparse bool
	// Workers/Shards configure the execution pool (0 = serial).
	Workers, Shards int
	// Metrics receives channel telemetry (may be nil).
	Metrics *obs.Registry
}

// RunWaveBroadcastOpts executes the protocol on a noiseless network with
// the given execution options and returns each node's decoded message.
// When dBound <= 0 it is tightened to the source's BFS eccentricity
// (instead of RunWaveBroadcast's loose default of n), which is what makes
// the large-n round budget O(D + b) in practice.
func RunWaveBroadcastOpts(g *graph.Graph, source int, msg []byte, bits, dBound int, seed uint64, opt WaveOptions) ([][]byte, int, error) {
	if bits <= 0 {
		return nil, 0, fmt.Errorf("beepalgs: wave broadcast needs bits > 0")
	}
	if dBound <= 0 {
		dist, _ := g.BFS(source)
		for _, d := range dist {
			if d > dBound {
				dBound = d
			}
		}
		if dBound < 1 {
			dBound = 1
		}
	}
	nw, err := beep.NewNetwork(g, beep.Params{
		Seed:    seed,
		Workers: opt.Workers,
		Shards:  opt.Shards,
		Metrics: opt.Metrics,
	})
	if err != nil {
		return nil, 0, err
	}
	progs := make([]beep.Program, g.N())
	for v := range progs {
		progs[v] = &WaveBroadcast{
			Source:    v == source,
			Message:   msg,
			Bits:      bits,
			DBound:    dBound,
			EarlyStop: opt.EarlyStop,
		}
	}
	budget := WaveRounds(g.N(), bits, dBound)
	var res *beep.Result
	if opt.Sparse {
		res, err = nw.RunSparse(progs, budget)
	} else {
		res, err = nw.Run(progs, budget)
	}
	if err != nil {
		return nil, 0, err
	}
	out := make([][]byte, g.N())
	for v, o := range res.Outputs {
		out[v] = o.([]byte)
	}
	return out, res.Rounds, nil
}
