// Package repro is a from-scratch Go reproduction of "Optimal
// Message-Passing with Noisy Beeps" (Peter Davies, PODC 2023,
// arXiv:2303.15346): beeping-network simulators, the beep-code and
// distance-code constructions, the optimal Broadcast CONGEST / CONGEST
// simulation (Algorithm 1 and Corollary 12), the prior-work TDMA baseline,
// the §5 lower-bound machinery, and the §6 maximal-matching application —
// together with the experiment harness that regenerates every quantitative
// claim. See README.md for the layout and DESIGN.md for the system
// inventory and per-experiment index.
package repro
