// Quickstart: simulate a single Broadcast CONGEST round over a noisy
// beeping network.
//
// Six sensor nodes in a ring each broadcast a 12-bit reading. The
// Algorithm 1 simulator (internal/core) turns that one message-passing
// round into two beep-code phases on a channel that flips every received
// bit with probability ε = 0.1 — and every node still decodes both of its
// neighbors' readings exactly.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/wire"
)

// reading broadcasts a fixed 12-bit sensor value once and records what it
// hears from its neighbors.
type reading struct {
	env      congest.Env
	value    uint64
	received []uint64
	done     bool
}

func (r *reading) Init(env congest.Env) {
	r.env = env
	// A deterministic fake sensor value derived from the node ID.
	r.value = uint64(env.ID*37+100) & 0xfff
}

func (r *reading) Broadcast(round int) congest.Message {
	var w wire.Writer
	w.WriteUint(r.value, 12)
	return w.PaddedBytes(r.env.MsgBits)
}

func (r *reading) Receive(round int, msgs []congest.Message) {
	for _, m := range msgs {
		v, err := wire.NewReader(m).ReadUint(12)
		if err != nil {
			panic(err)
		}
		r.received = append(r.received, v)
	}
	r.done = true
}

func (r *reading) Done() bool { return r.done }

// Output returns the received readings sorted numerically (delivery is an
// unordered multiset).
func (r *reading) Output() any {
	sort.Slice(r.received, func(i, j int) bool { return r.received[i] < r.received[j] })
	return r.received
}

func main() {
	const n, eps = 6, 0.1
	g := graph.Cycle(n)

	params := core.DefaultParams(n, g.MaxDegree(), 12, eps)
	runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
		Params:      params,
		ChannelSeed: 42,
		AlgSeed:     7,
		NoisyOwn:    true,
	})
	if err != nil {
		log.Fatal(err)
	}

	algs := make([]congest.BroadcastAlgorithm, n)
	for v := range algs {
		algs[v] = &reading{}
	}
	res, err := runner.Run(algs, 3)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("simulated %d Broadcast CONGEST round(s) in %d noisy beep rounds (ε=%.2f)\n",
		res.SimRounds, res.BeepRounds, eps)
	fmt.Printf("phase length: %d beeps per phase, 2 phases per round\n", params.PhaseLength())
	fmt.Printf("decode errors: %d\n\n", res.MessageErrors)
	for v := 0; v < n; v++ {
		// Delivery is an unordered multiset (canonically sorted), so sort
		// the expected values the same way for display.
		a := uint64(((v+n-1)%n)*37+100) & 0xfff
		b := uint64(((v+1)%n)*37+100) & 0xfff
		if a > b {
			a, b = b, a
		}
		fmt.Printf("node %d decoded neighbor readings %v (true values [%d %d])\n",
			v, res.Outputs[v], a, b)
	}
}
