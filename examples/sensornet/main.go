// Sensor network scenario: the weak-device setting the paper's
// introduction motivates.
//
// A field of sensors on a jittered grid (bounded degree, multi-hop) does
// three things, all over beeps:
//
//  1. an alarm flood — the raw beep-wave primitive, one bit, O(D) rounds;
//  2. a noise-robust flood — the same wave surviving ε = 0.15 noise via
//     frame repetition;
//  3. a BFS tree — a real message-passing algorithm (Broadcast CONGEST)
//     run through the Algorithm 1 simulation, giving every sensor a
//     routing parent toward the gateway.
//
// Run with: go run ./examples/sensornet
package main

import (
	"fmt"
	"log"

	"repro/internal/algorithms/bfstree"
	"repro/internal/beep"
	"repro/internal/beepalgs"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	const (
		n      = 49
		maxDeg = 8
	)
	g := graph.RandomGeometricGrid(n, maxDeg, rng.New(6))
	fmt.Printf("sensor field: %d nodes, %d links, Δ=%d, diameter=%d\n\n",
		g.N(), g.M(), g.MaxDegree(), g.Diameter())

	alarmFlood(g)
	robustFlood(g)
	bfsOverBeeps(g)
	configBroadcast(g)
}

// alarmFlood: node 0 raises an alarm; the wave reaches node v in exactly
// dist(0,v) rounds on a noiseless channel.
func alarmFlood(g *graph.Graph) {
	nw, err := beep.NewNetwork(g, beep.Params{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	progs := make([]beep.Program, g.N())
	for v := range progs {
		progs[v] = &beep.AlarmFlood{Source: v == 0}
	}
	res, err := nw.Run(progs, g.N())
	if err != nil {
		log.Fatal(err)
	}
	dist, _ := g.BFS(0)
	worst := 0
	for v := 0; v < g.N(); v++ {
		if got := res.Outputs[v].(int); got != dist[v] {
			log.Fatalf("node %d activated at %d, want %d", v, got, dist[v])
		}
		if dist[v] > worst {
			worst = dist[v]
		}
	}
	fmt.Printf("1) alarm flood (noiseless): all %d sensors reached, farthest in %d rounds (= distance)\n",
		g.N(), worst)
}

// robustFlood: the same wave at ε = 0.15, using frame-majority voting.
func robustFlood(g *graph.Graph) {
	const frame = 32
	nw, err := beep.NewNetwork(g, beep.Params{Epsilon: 0.15, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	progs := make([]beep.Program, g.N())
	for v := range progs {
		progs[v] = &beep.RobustFlood{Source: v == 0, FrameLen: frame}
	}
	if _, err := nw.Run(progs, frame*(g.Diameter()+8)); err != nil {
		log.Fatal(err)
	}
	reached := 0
	for v := 0; v < g.N(); v++ {
		if progs[v].(*beep.RobustFlood).Output().(int) >= 0 {
			reached++
		}
	}
	fmt.Printf("2) robust flood (ε=0.15):   %d/%d sensors reached through noise (%d-round frames)\n",
		reached, g.N(), frame)
}

// configBroadcast: the gateway pushes a 16-bit configuration word to every
// sensor with beep waves — O(D + b) rounds, the §1.2 primitive.
func configBroadcast(g *graph.Graph) {
	const config uint16 = 0xbee9
	msg := []byte{byte(config & 0xff), byte(config >> 8)}
	out, rounds, err := beepalgs.RunWaveBroadcast(g, 0, msg, 16, g.Diameter()+1, 9)
	if err != nil {
		log.Fatal(err)
	}
	okCount := 0
	for v := 0; v < g.N(); v++ {
		if len(out[v]) == 2 && out[v][0] == msg[0] && out[v][1] == msg[1] {
			okCount++
		}
	}
	fmt.Printf("4) config broadcast (beep waves): 0x%04x delivered to %d/%d sensors in %d rounds (O(D+b))\n",
		config, okCount, g.N(), rounds)
}

// bfsOverBeeps: a routing tree toward gateway 0 via the full simulation.
func bfsOverBeeps(g *graph.Graph) {
	const eps = 0.1
	runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
		Params:      core.DefaultParams(g.N(), g.MaxDegree(), bfstree.MsgBits(g.N()), eps),
		ChannelSeed: 3,
		AlgSeed:     4,
		NoisyOwn:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := runner.Run(bfstree.New(g.N(), 0), g.Diameter()+2)
	if err != nil {
		log.Fatal(err)
	}
	outs := make([]bfstree.Result, g.N())
	for v, o := range res.Outputs {
		outs[v] = o.(bfstree.Result)
	}
	if err := bfstree.Verify(g, 0, outs); err != nil {
		log.Fatalf("invalid BFS tree: %v", err)
	}
	fmt.Printf("3) BFS routing tree (ε=%.2f): built in %d beep rounds, %d decode errors, verified ✓\n",
		eps, res.BeepRounds, res.MessageErrors)
	byLevel := make(map[int]int)
	for _, r := range outs {
		byLevel[r.Dist]++
	}
	fmt.Print("   sensors per hop level: ")
	for d := 0; ; d++ {
		c, ok := byLevel[d]
		if !ok {
			break
		}
		fmt.Printf("L%d:%d ", d, c)
	}
	fmt.Println()
}
