// Biological MIS: the fly's sensory-organ selection problem (Afek et al.,
// cited in the paper's introduction) — cells must elect a sparse set of
// "leaders" such that every cell either is one or touches one, using only
// primitive all-or-nothing signalling.
//
// Here the classic Luby MIS algorithm, written once against the Broadcast
// CONGEST interface, runs in three settings on the same cell-contact
// topology:
//
//   - natively (idealized message passing),
//   - over noiseless beeps,
//   - over noisy beeps (ε = 0.15),
//
// producing a valid maximal independent set in all three — the "existing
// algorithms applied out-of-the-box to networks of weak devices" promise
// of the paper.
//
// Run with: go run ./examples/biologicalmis
package main

import (
	"fmt"
	"log"

	"repro/internal/algorithms/mis"
	"repro/internal/congest"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	const (
		n      = 40
		maxDeg = 6
	)
	g := graph.RandomBoundedDegree(n, maxDeg, 0.12, rng.New(21))
	fmt.Printf("cell-contact graph: %d cells, %d contacts, Δ=%d\n\n", g.N(), g.M(), g.MaxDegree())

	native := runNative(g)
	report("native Broadcast CONGEST", g, native, 0)

	for _, eps := range []float64{0, 0.15} {
		inMIS, beepRounds := runOverBeeps(g, eps)
		report(fmt.Sprintf("beeping model (ε=%.2f)", eps), g, inMIS, beepRounds)
	}
}

func runNative(g *graph.Graph) []bool {
	eng, err := congest.NewBroadcastEngine(g, mis.MsgBits(g.N()), 3)
	if err != nil {
		log.Fatal(err)
	}
	res, err := eng.Run(mis.New(g.N()), mis.MaxRounds(g.N()))
	if err != nil {
		log.Fatal(err)
	}
	if !res.AllDone {
		log.Fatal("native MIS did not terminate")
	}
	return toBools(res.Outputs)
}

func runOverBeeps(g *graph.Graph, eps float64) ([]bool, int) {
	runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
		Params:      core.DefaultParams(g.N(), g.MaxDegree(), mis.MsgBits(g.N()), eps),
		ChannelSeed: 8,
		AlgSeed:     9,
		NoisyOwn:    true,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := runner.Run(mis.New(g.N()), mis.MaxRounds(g.N()))
	if err != nil {
		log.Fatal(err)
	}
	if !res.AllDone {
		log.Fatal("beep-level MIS did not terminate")
	}
	return toBools(res.Outputs), res.BeepRounds
}

func report(label string, g *graph.Graph, inMIS []bool, beepRounds int) {
	if err := mis.Verify(g, inMIS); err != nil {
		log.Fatalf("%s: invalid MIS: %v", label, err)
	}
	size := 0
	for _, in := range inMIS {
		if in {
			size++
		}
	}
	if beepRounds > 0 {
		fmt.Printf("%-28s %d leaders, valid ✓ (%d beep rounds)\n", label+":", size, beepRounds)
	} else {
		fmt.Printf("%-28s %d leaders, valid ✓\n", label+":", size)
	}
}

func toBools(outs []any) []bool {
	res := make([]bool, len(outs))
	for i, o := range outs {
		res[i] = o.(bool)
	}
	return res
}
