// Maximal matching with noisy beeps — the paper's §6 headline end to end.
//
// A 48-node random 6-regular network runs Algorithm 3 (the O(log n)-round
// Propose/Reply/Confirm Broadcast CONGEST matching), simulated over the
// noisy beeping model by Algorithm 1. The run demonstrates Theorem 21: a
// maximal matching in O(Δ log² n) beep rounds despite every received bit
// flipping with probability ε.
//
// Run with: go run ./examples/maximalmatching
package main

import (
	"fmt"
	"log"

	"repro/internal/algorithms/matching"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
)

func main() {
	const (
		n     = 48
		delta = 6
		eps   = 0.1
	)
	g, err := graph.RandomRegular(n, delta, rng.New(11))
	if err != nil {
		log.Fatal(err)
	}

	runner, err := core.NewBroadcastRunner(g, core.RunnerConfig{
		Params:      core.DefaultParams(n, g.MaxDegree(), matching.MsgBits(n), eps),
		ChannelSeed: 5,
		AlgSeed:     6,
		NoisyOwn:    true,
	})
	if err != nil {
		log.Fatal(err)
	}

	res, err := runner.Run(matching.New(n), matching.MaxRounds(n))
	if err != nil {
		log.Fatal(err)
	}
	if !res.AllDone {
		log.Fatal("matching did not terminate within the O(log n) budget")
	}

	partners := make([]int, n)
	for v, o := range res.Outputs {
		partners[v] = o.(int)
	}
	if err := matching.Verify(g, partners); err != nil {
		log.Fatalf("invalid matching: %v", err)
	}

	fmt.Printf("graph: %d nodes, %d edges, Δ=%d\n", n, g.M(), g.MaxDegree())
	fmt.Printf("Broadcast CONGEST rounds: %d (budget %d)\n", res.SimRounds, matching.MaxRounds(n))
	fmt.Printf("noisy beep rounds (ε=%.2f): %d\n", eps, res.BeepRounds)
	fmt.Printf("decode errors: %d\n", res.MessageErrors)
	fmt.Printf("matching size: %d pairs, maximal and symmetric ✓\n\n", matching.Size(partners))
	for v, p := range partners {
		if p != matching.Unmatched && v < p {
			fmt.Printf("  %2d — %2d\n", v, p)
		}
	}
	unmatched := 0
	for _, p := range partners {
		if p == matching.Unmatched {
			unmatched++
		}
	}
	fmt.Printf("  (%d nodes unmatched, all with matched neighbors)\n", unmatched)
}
